// Byte-deterministic renderers for the critical-path analysis: a
// machine-readable JSON form (seconds as %.17g, round-trippable) and an
// aligned text form (microseconds as %.6f) for terminals and golden tests.
// Same determinism contract as chrome_trace_json: both are pure functions
// of the virtual-clock data, so identical Configs render identical bytes.

#include <cstdarg>
#include <cstdio>
#include <string>

#include "obs/analyze.h"
#include "obs/export.h"

namespace brickx::obs {

namespace {

std::string us(double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", seconds * 1e6);
  return buf;
}

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string jesc(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

/// Composition key of a segment — cat for tracked local time, "untracked"
/// for clock time outside any depth-0 span, seg_class otherwise. Must match
/// the keys analyze_run puts into RunAnalysis::composition.
const char* seg_key(const PathSegment& seg) {
  if (seg.kind != SegKind::Local) return seg_class(seg.kind);
  return seg.name != nullptr ? cat_name(seg.cat) : "untracked";
}

std::string run_json(const RunAnalysis& a) {
  std::string o = "{\"label\":\"" + jesc(a.label) + "\"";
  o += ",\"nranks\":" + std::to_string(a.nranks);
  o += ",\"makespan_s\":" + num(a.makespan);
  o += ",\"path_s\":" + num(a.path_seconds);
  o += std::string(",\"identity_ok\":") + (a.identity_ok ? "true" : "false");
  o += ",\"segments\":[";
  for (std::size_t i = 0; i < a.segments.size(); ++i) {
    const PathSegment& s = a.segments[i];
    if (i != 0) o += ",";
    o += "\n  {\"rank\":" + std::to_string(s.rank) + ",\"class\":\"" +
         seg_key(s) + "\"";
    if (s.kind == SegKind::Local && s.name != nullptr)
      o += ",\"phase\":\"" + jesc(s.name) +
           "\",\"step\":" + std::to_string(s.step);
    o += ",\"t0_s\":" + num(s.t0) + ",\"t1_s\":" + num(s.t1) + "}";
  }
  o += a.segments.empty() ? "]" : "\n ]";
  o += ",\"composition\":{";
  for (std::size_t i = 0; i < a.composition.size(); ++i) {
    if (i != 0) o += ",";
    o += "\"" + jesc(a.composition[i].first) +
         "\":" + num(a.composition[i].second);
  }
  o += "}";
  o += ",\"rank_path_s\":[";
  for (std::size_t r = 0; r < a.rank_seconds.size(); ++r) {
    if (r != 0) o += ",";
    o += num(a.rank_seconds[r]);
  }
  o += "]";
  o += ",\"attribution\":[";
  for (std::size_t i = 0; i < a.attribution.size(); ++i) {
    const RunAnalysis::Attr& at = a.attribution[i];
    if (i != 0) o += ",";
    o += "\n  {\"rank\":" + std::to_string(at.rank) + ",\"cat\":\"" +
         cat_name(at.cat) + "\",\"phase\":\"" + jesc(at.phase) +
         "\",\"seconds\":" + num(at.seconds) + "}";
  }
  o += a.attribution.empty() ? "]" : "\n ]";
  const WaitStates& w = a.waits;
  o += ",\"wait_states\":{";
  o += "\"late_sender_s\":" + num(w.late_sender_s);
  o += ",\"transfer_s\":" + num(w.transfer_s);
  o += ",\"binding_waits\":" + std::to_string(w.binding_waits);
  o += ",\"late_sender_waits\":" + std::to_string(w.late_sender_waits);
  o += ",\"late_receiver_msgs\":" + std::to_string(w.late_receiver_msgs);
  o += ",\"queue_s\":" + num(w.queue_s);
  o += ",\"contention_s\":" + num(w.contention_s);
  o += ",\"fault_delay_s\":" + num(w.fault_delay_s);
  o += ",\"recv_latency_s\":" + num(w.recv_latency_s);
  o += ",\"collective_skew_s\":" + num(w.coll_skew_s);
  o += ",\"collectives\":" + std::to_string(w.collectives);
  o += ",\"max_sharing\":" + num(w.max_sharing);
  o += "}";
  const double pct =
      a.makespan > 0.0 ? 100.0 * a.overlap_headroom / a.makespan : 0.0;
  o += ",\"overlap\":{";
  o += "\"comm_on_path_s\":" + num(a.comm_on_path);
  o += ",\"calc_on_path_s\":" + num(a.calc_on_path);
  o += ",\"headroom_s\":" + num(a.overlap_headroom);
  o += ",\"headroom_pct\":" + num(pct);
  o += "}}";
  return o;
}

std::string fmt(const char* f, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, f);
  std::vsnprintf(buf, sizeof buf, f, ap);
  va_end(ap);
  return buf;
}

std::string run_text(const RunAnalysis& a) {
  std::string o;
  o += "=== critical path: " + a.label + " (" + std::to_string(a.nranks) +
       " ranks) ===\n";
  o += "makespan " + us(a.makespan) + " us | path " + us(a.path_seconds) +
       " us | " + std::to_string(a.segments.size()) + " segments | " +
       (a.identity_ok ? "identity ok" : "identity BROKEN") + "\n";
  o += "composition (% of makespan):\n";
  for (const auto& [key, secs] : a.composition) {
    const double pct = a.makespan > 0.0 ? 100.0 * secs / a.makespan : 0.0;
    o += fmt("  %-18s %16s us %5.1f%%\n", key.c_str(), us(secs).c_str(), pct);
  }
  o += "time on path per rank (us):";
  for (double r : a.rank_seconds) o += " " + us(r);
  o += "\n";
  const WaitStates& w = a.waits;
  o += "wait states (whole run):\n";
  o += fmt("  late sender     %16s us over %lld/%lld binding waits\n",
           us(w.late_sender_s).c_str(),
           static_cast<long long>(w.late_sender_waits),
           static_cast<long long>(w.binding_waits));
  o += fmt("  in-flight xfer  %16s us\n", us(w.transfer_s).c_str());
  o += fmt("  late receiver   %lld msgs fully hidden\n",
           static_cast<long long>(w.late_receiver_msgs));
  o += fmt("  nic queueing    %16s us | contention %s us | peak sharing %.2f\n",
           us(w.queue_s).c_str(), us(w.contention_s).c_str(), w.max_sharing);
  o += fmt("  recv latency    %16s us | fault delay %s us\n",
           us(w.recv_latency_s).c_str(), us(w.fault_delay_s).c_str());
  o += fmt("  collective skew %16s us over %lld collectives\n",
           us(w.coll_skew_s).c_str(), static_cast<long long>(w.collectives));
  const double pct =
      a.makespan > 0.0 ? 100.0 * a.overlap_headroom / a.makespan : 0.0;
  o += fmt(
      "overlap potential: comm %s us vs interior calc %s us -> headroom %s "
      "us (%.1f%% of makespan)\n",
      us(a.comm_on_path).c_str(), us(a.calc_on_path).c_str(),
      us(a.overlap_headroom).c_str(), pct);
  if (!a.attribution.empty()) {
    o += "attribution (rank x cat x phase):\n";
    for (const RunAnalysis::Attr& at : a.attribution)
      o += fmt("  r%-3d %-10s %-22s %16s us\n", at.rank, cat_name(at.cat),
               at.phase.c_str(), us(at.seconds).c_str());
  }
  return o;
}

}  // namespace

std::string analysis_json(const Session& s) {
  std::string o = "{\"version\":1,\"runs\":[";
  for (std::size_t k = 0; k < s.runs().size(); ++k) {
    if (k != 0) o += ",";
    o += "\n" + run_json(analyze_run(s.runs()[k]));
  }
  o += s.runs().empty() ? "]}\n" : "\n]}\n";
  return o;
}

std::string analysis_text(const Session& s) {
  std::string o = "critical-path analysis: " +
                  std::to_string(s.runs().size()) + " run" +
                  (s.runs().size() == 1 ? "" : "s") + "\n";
  for (const auto& run : s.runs()) {
    o += "\n";
    o += run_text(analyze_run(run));
  }
  return o;
}

void write_analysis(const Session& s, const std::string& path) {
  const bool text =
      path.size() >= 4 && path.compare(path.size() - 4, 4, ".txt") == 0;
  write_file(path, text ? analysis_text(s) : analysis_json(s));
}

}  // namespace brickx::obs
