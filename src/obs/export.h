#pragma once

// Exporters for obs data. Two formats:
//
//  * Chrome trace-event JSON (load in Perfetto / chrome://tracing): one pid
//    per rank, one span track per run, plus a "net" track per rank carrying
//    message slices connected by flow arrows.
//  * Flat metrics, JSON or CSV: one entry per (run, metric) with counters,
//    gauges and histogram moments — what bench binaries write for
//    --metrics-out so figures become machine-readable artifacts.
//
// Both renderers are byte-deterministic: event order, ids and number
// formatting are functions of the (deterministic) virtual-clock data only,
// so identical Configs produce identical files (golden-testable traces).

#include <string>

#include "obs/session.h"

namespace brickx::obs {

#if BRICKX_OBS

[[nodiscard]] std::string chrome_trace_json(const Session& s);
[[nodiscard]] std::string metrics_json(const Session& s);
[[nodiscard]] std::string metrics_csv(const Session& s);

#else  // !BRICKX_OBS — emit valid, empty artifacts.

[[nodiscard]] inline std::string chrome_trace_json(const Session&) {
  return "{\"traceEvents\":[]}\n";
}
[[nodiscard]] inline std::string metrics_json(const Session&) {
  return "{\"version\":1,\"runs\":[]}\n";
}
[[nodiscard]] inline std::string metrics_csv(const Session&) {
  return "run,label,metric,kind,value,count,min,avg,max,sigma\n";
}

#endif  // BRICKX_OBS

/// Write `content` to `path`; throws brickx::Error on I/O failure.
void write_file(const std::string& path, const std::string& content);

void write_chrome_trace(const Session& s, const std::string& path);
/// Writes CSV when `path` ends in ".csv", JSON otherwise.
void write_metrics(const Session& s, const std::string& path);

}  // namespace brickx::obs
