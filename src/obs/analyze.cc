#include "obs/analyze.h"

#include <algorithm>
#include <cstddef>
#include <map>
#include <tuple>

namespace brickx::obs {

const char* seg_class(SegKind k) {
  switch (k) {
    case SegKind::Local:
      return "local";
    case SegKind::MsgQueue:
      return "msg.queue";
    case SegKind::MsgInject:
      return "msg.inject";
    case SegKind::MsgContend:
      return "msg.contention";
    case SegKind::MsgWire:
      return "msg.wire";
    case SegKind::MsgFault:
      return "msg.fault_delay";
    case SegKind::MsgRecvLat:
      return "msg.recv_latency";
    case SegKind::Collective:
      return "collective";
    case SegKind::MsgOnNode:
      return "msg.onnode";
    case SegKind::MsgAggUnpack:
      return "msg.agg_unpack";
  }
  return "?";
}

namespace {

/// A point on a rank's timeline where its progress may depend on another
/// rank: a binding receive (done = avail) or a collective exit.
struct Sync {
  bool coll = false;
  std::size_t idx = 0;  ///< recvs() index or collective ordinal
  double done = 0.0;
};

struct RankView {
  std::vector<const SpanEvent*> top;  ///< depth-0 spans, time order
  std::vector<Sync> syncs;            ///< sorted by done ascending
  std::ptrdiff_t cursor = -1;         ///< latest not-yet-consumed sync
};

}  // namespace

RunAnalysis analyze_run(const Session::Run& run) {
  RunAnalysis out;
  out.label = run.label;
  const std::size_t R = run.logs.size();
  out.nranks = run.nranks > 0 ? run.nranks : static_cast<int>(R);
  out.rank_seconds.assign(R, 0.0);

  // --- collective alignment: the n-th collective on every rank is the same
  // rendezvous; if counts disagree (possible only for hand-built logs —
  // collectives are global in simmpi) skip collective edges entirely.
  bool colls_ok = R > 0;
  std::size_t ncoll = R > 0 ? run.logs[0].collectives().size() : 0;
  for (std::size_t r = 1; r < R; ++r)
    if (run.logs[r].collectives().size() != ncoll) colls_ok = false;
  if (!colls_ok) ncoll = 0;
  std::vector<double> coll_entry_max(ncoll, 0.0);
  std::vector<int> coll_argmax(ncoll, 0);
  for (std::size_t n = 0; n < ncoll; ++n) {
    for (std::size_t r = 0; r < R; ++r) {
      const double e = run.logs[r].collectives()[n].entry;
      if (r == 0 || e > coll_entry_max[n]) {  // ties -> lowest rank
        coll_entry_max[n] = e;
        coll_argmax[n] = static_cast<int>(r);
      }
    }
  }

  // --- whole-run wait-state taxonomy (independent of the critical path).
  WaitStates& w = out.waits;
  w.collectives = static_cast<std::int64_t>(ncoll);
  for (std::size_t r = 0; r < R; ++r) {
    const RankLog& log = run.logs[r];
    for (const FlowEvent& f : log.flows()) {
      w.queue_s += f.inject_start - f.post;
      w.contention_s +=
          std::max(0.0, (f.depart - f.inject_start) - f.inject_nominal);
      w.max_sharing = std::max(w.max_sharing, f.sharing);
    }
    for (const RecvEvent& re : log.recvs()) {
      w.fault_delay_s += re.fault_delay;
      w.recv_latency_s += re.avail - re.arrive;
      if (re.avail > re.wait_start) {
        ++w.binding_waits;
        const double waited = re.avail - re.wait_start;
        const double late =
            std::min(waited, std::max(0.0, re.post - re.wait_start));
        w.late_sender_s += late;
        w.transfer_s += waited - late;
        if (re.post > re.wait_start) ++w.late_sender_waits;
      } else {
        ++w.late_receiver_msgs;
      }
    }
    for (std::size_t n = 0; n < ncoll; ++n)
      w.coll_skew_s += coll_entry_max[n] - log.collectives()[n].entry;
  }

  // --- per-rank views: depth-0 spans (already t0-ordered: the log appends
  // in open order on a monotone clock) and the sync list.
  std::vector<RankView> views(R);
  double makespan = 0.0;
  int anchor = 0;
  for (std::size_t r = 0; r < R; ++r) {
    const RankLog& log = run.logs[r];
    RankView& rv = views[r];
    double end = 0.0;
    for (const SpanEvent& s : log.spans()) {
      end = std::max(end, std::max(s.t0, s.t1));
      if (s.depth == 0) rv.top.push_back(&s);
    }
    const auto& recvs = log.recvs();
    for (std::size_t i = 0; i < recvs.size(); ++i) {
      const RecvEvent& re = recvs[i];
      end = std::max(end, std::max(re.avail, re.wait_start));
      if (re.avail > re.wait_start && re.src >= 0 &&
          static_cast<std::size_t>(re.src) < R)
        rv.syncs.push_back(Sync{false, i, re.avail});
    }
    for (std::size_t n = 0; n < ncoll; ++n) {
      end = std::max(end, log.collectives()[n].exit);
      rv.syncs.push_back(Sync{true, n, log.collectives()[n].exit});
    }
    std::stable_sort(rv.syncs.begin(), rv.syncs.end(),
                     [](const Sync& a, const Sync& b) { return a.done < b.done; });
    rv.cursor = static_cast<std::ptrdiff_t>(rv.syncs.size()) - 1;
    if (end > makespan) {  // ties -> lowest rank
      makespan = end;
      anchor = static_cast<int>(r);
    }
  }
  out.makespan = makespan;
  if (R == 0 || makespan <= 0.0) return out;

  // --- backward walk. Every boundary handed to emit() is a double shared
  // with its neighbor segment, so the forward path telescopes to exactly
  // [0, makespan] — that contiguity IS the critical-path identity.
  auto emit = [&](int rank, SegKind kind, Cat cat, const char* name,
                  std::int64_t step, double t0, double t1) {
    if (!(t1 > t0)) return;  // zero-length: neighbors already share t0 == t1
    out.segments.push_back(PathSegment{rank, kind, cat, name, step, t0, t1});
  };

  // Attribute the local stretch (a, b] of rank r to its depth-0 spans;
  // clock time outside any span becomes "untracked" filler.
  auto emit_local = [&](int r, double a, double b) {
    const auto& top = views[static_cast<std::size_t>(r)].top;
    double pos = b;
    auto it = std::lower_bound(
        top.begin(), top.end(), b,
        [](const SpanEvent* s, double t) { return s->t0 < t; });
    while (it != top.begin() && pos > a) {
      const SpanEvent* s = *--it;
      if (s->t1 <= s->t0) continue;  // instant marker / unclosed span
      if (s->t1 <= a) break;         // depth-0 spans are time-ordered
      const double hi = std::min(s->t1, pos);
      const double lo = std::max(s->t0, a);
      emit(r, SegKind::Local, Cat::Calc, nullptr, -1, hi, pos);  // gap
      emit(r, SegKind::Local, s->cat, s->name, s->step, lo, hi);
      pos = lo;
    }
    emit(r, SegKind::Local, Cat::Calc, nullptr, -1, a, pos);
  };

  int cur_r = anchor;
  double cur_t = makespan;
  while (cur_t > 0.0) {
    RankView& rv = views[static_cast<std::size_t>(cur_r)];
    // Syncs after the current position can never rejoin the path (cur_t is
    // non-increasing), so skipping them is final — and the strictly
    // decreasing cursors are what guarantee termination.
    while (rv.cursor >= 0 &&
           rv.syncs[static_cast<std::size_t>(rv.cursor)].done > cur_t)
      --rv.cursor;
    if (rv.cursor < 0) {
      emit_local(cur_r, 0.0, cur_t);
      break;
    }
    const Sync s = rv.syncs[static_cast<std::size_t>(rv.cursor--)];
    emit_local(cur_r, s.done, cur_t);
    cur_t = s.done;
    if (s.coll) {
      // The rendezvous exit is bound by the latest entry; the barrier cost
      // is billed to the straggler and the walk continues on its timeline.
      const double em = coll_entry_max[s.idx];
      emit(coll_argmax[s.idx], SegKind::Collective, Cat::Collective, nullptr,
           -1, em, cur_t);
      cur_r = coll_argmax[s.idx];
      cur_t = em;
    } else {
      // Binding receive: route through the sender-side message timeline,
      // post -> inject_start -> (nominal|contention) -> depart -> wire ->
      // fault -> arrive -> avail. The chain is monotone by construction;
      // clamps only guard hand-built or FP-degenerate data.
      const RecvEvent& re =
          run.logs[static_cast<std::size_t>(cur_r)].recvs()[s.idx];
      const int sr = re.src;
      emit(cur_r, SegKind::MsgRecvLat, Cat::Wait, nullptr, -1, re.arrive,
           cur_t);
      const double t_fd = std::max(re.depart, re.arrive - re.fault_delay);
      emit(sr, SegKind::MsgFault, Cat::Wait, nullptr, -1, t_fd, re.arrive);
      // An aggregated sub-message spends [arrival of its frame, its own
      // visibility] in the receiver node's unpack walk; agg_unpack is 0 for
      // unaggregated messages, so the segment vanishes and the wire stretch
      // is exactly the legacy one. On-node messages class their "wire" (the
      // shared-memory handoff) separately for attribution.
      const double t_up = std::max(re.depart, t_fd - re.agg_unpack);
      emit(sr, SegKind::MsgAggUnpack, Cat::Wait, nullptr, -1, t_up, t_fd);
      emit(sr, re.onnode ? SegKind::MsgOnNode : SegKind::MsgWire, Cat::Wait,
           nullptr, -1, re.depart, t_up);
      const double nom_end =
          std::min(re.depart,
                   std::max(re.inject_start,
                            re.inject_start + re.inject_nominal));
      emit(sr, SegKind::MsgContend, Cat::Wait, nullptr, -1, nom_end,
           re.depart);
      emit(sr, SegKind::MsgInject, Cat::Wait, nullptr, -1, re.inject_start,
           nom_end);
      emit(sr, SegKind::MsgQueue, Cat::Wait, nullptr, -1, re.post,
           re.inject_start);
      cur_r = sr;
      cur_t = re.post;
    }
  }
  std::reverse(out.segments.begin(), out.segments.end());

  // --- identity check + aggregates over the forward path.
  bool ok = true;
  double expect = 0.0;
  std::map<std::string, double> comp;
  std::map<std::tuple<int, int, std::string>, double> attr;
  for (const PathSegment& seg : out.segments) {
    ok = ok && seg.t0 == expect;
    expect = seg.t1;
    const double d = seg.t1 - seg.t0;
    out.path_seconds += d;
    if (seg.rank >= 0 && static_cast<std::size_t>(seg.rank) < R)
      out.rank_seconds[static_cast<std::size_t>(seg.rank)] += d;
    if (seg.kind == SegKind::Local) {
      if (seg.name != nullptr) {
        comp[cat_name(seg.cat)] += d;
        std::string phase = seg.name;
        if (seg.step <= -2) phase += "/warmup";
        attr[{seg.rank, static_cast<int>(seg.cat), std::move(phase)}] += d;
        if (seg.cat == Cat::Calc) out.calc_on_path += d;
      } else {
        comp["untracked"] += d;
      }
    } else {
      comp[seg_class(seg.kind)] += d;
      if (seg.kind != SegKind::Collective) out.comm_on_path += d;
    }
  }
  out.identity_ok = ok && expect == makespan;
  out.overlap_headroom = std::min(out.comm_on_path, out.calc_on_path);

  out.composition.assign(comp.begin(), comp.end());
  std::stable_sort(out.composition.begin(), out.composition.end(),
                   [](const auto& a, const auto& b) {
                     if (a.second != b.second) return a.second > b.second;
                     return a.first < b.first;
                   });
  out.attribution.reserve(attr.size());
  for (const auto& [key, secs] : attr)
    out.attribution.push_back(RunAnalysis::Attr{
        std::get<0>(key), static_cast<Cat>(std::get<1>(key)),
        std::get<2>(key), secs});
  return out;
}

}  // namespace brickx::obs
