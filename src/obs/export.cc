#include "obs/export.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "common/error.h"

namespace brickx::obs {

#if BRICKX_OBS

namespace {

/// Fixed-format microseconds from virtual seconds. %.6f keeps picosecond
/// resolution and — being a pure function of the deterministic double —
/// renders identically across runs of the same Config.
std::string us(double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", seconds * 1e6);
  return buf;
}

/// Round-trippable, deterministic double rendering for metrics.
std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

class EventSink {
 public:
  explicit EventSink(std::string* out) : out_(out) {}
  void event(const std::string& body) {
    *out_ += first_ ? "\n " : ",\n ";
    first_ = false;
    *out_ += body;
  }

 private:
  std::string* out_;
  bool first_ = true;
};

}  // namespace

std::string chrome_trace_json(const Session& s) {
  std::string out = "{\"traceEvents\":[";
  EventSink sink(&out);

  int max_ranks = 0;
  for (const auto& run : s.runs()) max_ranks = std::max(max_ranks, run.nranks);

  // Process metadata: one pid per rank.
  for (int r = 0; r < max_ranks; ++r) {
    sink.event("{\"ph\":\"M\",\"pid\":" + std::to_string(r) +
               ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":"
               "\"rank " +
               std::to_string(r) + "\"}}");
  }
  // Thread metadata: per run, a span track (tid 2k) and a net track
  // (tid 2k+1) so consecutive experiments in one session do not overlap.
  for (std::size_t k = 0; k < s.runs().size(); ++k) {
    const auto& run = s.runs()[k];
    const std::string span_tid = std::to_string(2 * k);
    const std::string net_tid = std::to_string(2 * k + 1);
    for (int r = 0; r < run.nranks; ++r) {
      const std::string pid = std::to_string(r);
      sink.event("{\"ph\":\"M\",\"pid\":" + pid + ",\"tid\":" + span_tid +
                 ",\"name\":\"thread_name\",\"args\":{\"name\":\"run " +
                 std::to_string(k) + " " + escape(run.label) + "\"}}");
      sink.event("{\"ph\":\"M\",\"pid\":" + pid + ",\"tid\":" + net_tid +
                 ",\"name\":\"thread_name\",\"args\":{\"name\":\"run " +
                 std::to_string(k) + " " + escape(run.label) + " net\"}}");
    }
  }

  std::int64_t flow_id = 0;
  for (std::size_t k = 0; k < s.runs().size(); ++k) {
    const auto& run = s.runs()[k];
    const std::string span_tid = std::to_string(2 * k);
    const std::string net_tid = std::to_string(2 * k + 1);

    // Spans, rank by rank, in recording order (deterministic: each RankLog
    // is appended only by its own rank thread on the virtual clock).
    for (int r = 0; r < run.nranks; ++r) {
      const std::string pid = std::to_string(r);
      for (const SpanEvent& ev : run.logs[static_cast<std::size_t>(r)]
                                     .spans()) {
        std::string body = "{\"ph\":\"X\",\"pid\":" + pid +
                           ",\"tid\":" + span_tid + ",\"cat\":\"" +
                           cat_name(ev.cat) + "\",\"name\":\"" +
                           escape(ev.name) + "\",\"ts\":" + us(ev.t0) +
                           ",\"dur\":" + us(ev.t1 - ev.t0);
        if (ev.step >= 0)
          body += ",\"args\":{\"step\":" + std::to_string(ev.step) + "}";
        body += "}";
        sink.event(body);
      }
    }

    // Messages: a slice on the sender's net track for the wire time, a
    // zero-duration arrival marker on the receiver's, and a flow arrow
    // (s/f) connecting them. Sorted like the legacy Runtime::trace().
    std::vector<FlowEvent> flows;
    for (int r = 0; r < run.nranks; ++r) {
      const auto& fs = run.logs[static_cast<std::size_t>(r)].flows();
      flows.insert(flows.end(), fs.begin(), fs.end());
    }
    std::sort(flows.begin(), flows.end(),
              [](const FlowEvent& a, const FlowEvent& b) {
                if (a.depart != b.depart) return a.depart < b.depart;
                if (a.src != b.src) return a.src < b.src;
                if (a.dst != b.dst) return a.dst < b.dst;
                return a.tag < b.tag;
              });
    for (const FlowEvent& f : flows) {
      const std::string id = std::to_string(flow_id++);
      const std::string label = "msg " + std::to_string(f.src) + "->" +
                                std::to_string(f.dst);
      const std::string args = ",\"args\":{\"tag\":" + std::to_string(f.tag) +
                               ",\"bytes\":" + std::to_string(f.bytes) + "}";
      sink.event("{\"ph\":\"X\",\"pid\":" + std::to_string(f.src) +
                 ",\"tid\":" + net_tid + ",\"cat\":\"msg\",\"name\":\"" +
                 label + "\",\"ts\":" + us(f.depart) +
                 ",\"dur\":" + us(f.arrive - f.depart) + args + "}");
      sink.event("{\"ph\":\"s\",\"pid\":" + std::to_string(f.src) +
                 ",\"tid\":" + net_tid + ",\"cat\":\"msg\",\"name\":\"" +
                 label + "\",\"id\":" + id + ",\"ts\":" + us(f.depart) + "}");
      sink.event("{\"ph\":\"X\",\"pid\":" + std::to_string(f.dst) +
                 ",\"tid\":" + net_tid + ",\"cat\":\"msg\",\"name\":\"arrive " +
                 std::to_string(f.src) + "->" + std::to_string(f.dst) +
                 "\",\"ts\":" + us(f.arrive) + ",\"dur\":0.000000" + args +
                 "}");
      sink.event("{\"ph\":\"f\",\"bp\":\"e\",\"pid\":" +
                 std::to_string(f.dst) + ",\"tid\":" + net_tid +
                 ",\"cat\":\"msg\",\"name\":\"" + label + "\",\"id\":" + id +
                 ",\"ts\":" + us(f.arrive) + "}");
    }
  }

  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

namespace {

std::string metric_json(const Metric& m) {
  switch (m.kind) {
    case MetricKind::Counter:
      return "{\"kind\":\"counter\",\"value\":" + std::to_string(m.value) +
             "}";
    case MetricKind::Gauge:
      return "{\"kind\":\"gauge\",\"value\":" + num(m.gauge) + "}";
    case MetricKind::Hist:
      return "{\"kind\":\"hist\",\"count\":" + std::to_string(m.hist.count()) +
             ",\"min\":" + num(m.hist.min()) + ",\"avg\":" + num(m.hist.avg()) +
             ",\"max\":" + num(m.hist.max()) +
             ",\"sigma\":" + num(m.hist.sigma()) + "}";
  }
  return "{}";
}

}  // namespace

std::string metrics_json(const Session& s) {
  std::string out = "{\"version\":1,\"runs\":[";
  for (std::size_t k = 0; k < s.runs().size(); ++k) {
    const auto& run = s.runs()[k];
    out += k == 0 ? "\n " : ",\n ";
    out += "{\"label\":\"" + escape(run.label) +
           "\",\"nranks\":" + std::to_string(run.nranks) + ",\"metrics\":{";
    const auto merged = merged_metrics(run.logs);
    bool first = true;
    for (const auto& [name, m] : merged) {
      out += first ? "\n  " : ",\n  ";
      first = false;
      out += "\"" + escape(name) + "\":" + metric_json(m);
    }
    out += first ? "}}" : "\n }}";
  }
  out += s.runs().empty() ? "]}\n" : "\n]}\n";
  return out;
}

namespace {

/// RFC-4180 CSV field: quoted (with doubled inner quotes) only when the
/// value contains a delimiter, so labels like "MemMap/um,p=2M" survive and
/// plain fields stay byte-identical to the unescaped form.
std::string csv_field(const std::string& s) {
  if (s.find_first_of(",\"\n\r") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string metrics_csv(const Session& s) {
  std::string out = "run,label,metric,kind,value,count,min,avg,max,sigma\n";
  for (std::size_t k = 0; k < s.runs().size(); ++k) {
    const auto& run = s.runs()[k];
    const auto merged = merged_metrics(run.logs);
    for (const auto& [name, m] : merged) {
      out += std::to_string(k) + "," + csv_field(run.label) + "," +
             csv_field(name) + ",";
      switch (m.kind) {
        case MetricKind::Counter:
          out += "counter," + std::to_string(m.value) + ",,,,,";
          break;
        case MetricKind::Gauge:
          out += "gauge," + num(m.gauge) + ",,,,,";
          break;
        case MetricKind::Hist:
          out += "hist,," + std::to_string(m.hist.count()) + "," +
                 num(m.hist.min()) + "," + num(m.hist.avg()) + "," +
                 num(m.hist.max()) + "," + num(m.hist.sigma());
          break;
      }
      out += "\n";
    }
  }
  return out;
}

#endif  // BRICKX_OBS

void write_file(const std::string& path, const std::string& content) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) brickx::fail("cannot open for writing: " + path);
  f.write(content.data(), static_cast<std::streamsize>(content.size()));
  if (!f) brickx::fail("short write: " + path);
}

void write_chrome_trace(const Session& s, const std::string& path) {
  write_file(path, chrome_trace_json(s));
}

void write_metrics(const Session& s, const std::string& path) {
  const bool csv =
      path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  write_file(path, csv ? metrics_csv(s) : metrics_json(s));
}

}  // namespace brickx::obs
