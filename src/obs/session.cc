#include "obs/session.h"

namespace brickx::obs {

#if BRICKX_OBS

namespace {
Session* g_active = nullptr;
}  // namespace

Session* Session::active() { return g_active; }

Session::Scope::Scope(Session& s) : prev_(g_active) { g_active = &s; }

Session::Scope::~Scope() { g_active = prev_; }

#endif  // BRICKX_OBS

}  // namespace brickx::obs
