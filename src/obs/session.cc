#include "obs/session.h"

namespace brickx::obs {

#if BRICKX_OBS

namespace {
// Thread-local: a Scope activates the session for the thread that opened
// it only. Benches drive everything from main, so they see no change; the
// autotuner's candidate evaluations on worker threads (src/tune) find no
// active session there and skip absorb — which would otherwise race on
// the session's unlocked run list.
thread_local Session* g_active = nullptr;
}  // namespace

Session* Session::active() { return g_active; }

Session::Scope::Scope(Session& s) : prev_(g_active) { g_active = &s; }

Session::Scope::~Scope() { g_active = prev_; }

#endif  // BRICKX_OBS

}  // namespace brickx::obs
