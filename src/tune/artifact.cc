#include "tune/artifact.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>

#include "common/error.h"
#include "core/layout.h"

namespace brickx::tune {

const char* gpu_name(harness::GpuMode g) {
  switch (g) {
    case harness::GpuMode::None:
      return "none";
    case harness::GpuMode::CudaAware:
      return "cuda-aware";
    case harness::GpuMode::Unified:
      return "unified";
    case harness::GpuMode::Staged:
      return "staged";
  }
  return "?";
}

std::optional<harness::GpuMode> parse_gpu(std::string_view s) {
  if (s == "none") return harness::GpuMode::None;
  if (s == "cuda-aware") return harness::GpuMode::CudaAware;
  if (s == "unified") return harness::GpuMode::Unified;
  if (s == "staged") return harness::GpuMode::Staged;
  return std::nullopt;
}

std::optional<harness::Method> parse_method(std::string_view s) {
  using harness::Method;
  for (Method m : {Method::Yask, Method::MpiTypes, Method::Basic,
                   Method::Layout, Method::MemMap, Method::Shift,
                   Method::Network})
    if (s == harness::method_name(m)) return m;
  return std::nullopt;
}

std::optional<model::Machine> machine_by_name(std::string_view s) {
  for (const model::Machine& m :
       {model::theta(), model::summit(), model::summit_future()})
    if (s == m.name) return m;
  return std::nullopt;
}

harness::Config problem_config(const TunedArtifact& art) {
  const auto m = machine_by_name(art.machine);
  BX_CHECK(m.has_value(), "tuned artifact names an unknown machine preset");
  harness::Config cfg;
  cfg.machine = *m;
  cfg.machine.net.ranks_per_node = art.ranks_per_node;
  cfg.rank_dims = art.rank_dims;
  cfg.subdomain = art.subdomain;
  cfg.ghost = art.ghost;
  cfg.use125 = art.use125;
  cfg.method = art.method;
  cfg.gpu = art.gpu;
  cfg.timesteps = art.timesteps;
  cfg.warmup_exchanges = art.warmup_exchanges;
  cfg.fabric = art.fabric;
  cfg.transport = art.transport;
  cfg.overlap = art.overlap;
  cfg.memmap_floor_proxy = art.memmap_floor_proxy;
  // The tuner evaluates the cost model; math validation is the tests' job.
  cfg.execute_kernels = false;
  return cfg;
}

void apply_choice(const TunedArtifact& art, harness::Config& cfg) {
  LayoutSpec layout;
  layout.order.reserve(art.layout_order.size());
  for (std::uint64_t raw : art.layout_order)
    layout.order.push_back(BitSet::from_raw(raw));
  BX_CHECK(layout.order.empty() || layout.valid(3),
           "tuned artifact carries an invalid layout permutation");
  cfg.layout = std::move(layout);
  cfg.mapping = art.mapping;
  cfg.brick = art.brick;
  cfg.page_size = art.page_size;
}

harness::Config tuned_config(const TunedArtifact& art) {
  harness::Config cfg = problem_config(art);
  apply_choice(art, cfg);
  return cfg;
}

TunedArtifact artifact_from(const harness::Config& problem) {
  TunedArtifact art;
  art.machine = problem.machine.name;
  art.rank_dims = problem.rank_dims;
  art.subdomain = problem.subdomain;
  art.ghost = problem.ghost;
  art.use125 = problem.use125;
  art.method = problem.method;
  art.gpu = problem.gpu;
  art.timesteps = problem.timesteps;
  art.warmup_exchanges = problem.warmup_exchanges;
  art.ranks_per_node = problem.machine.net.ranks_per_node;
  art.fabric = problem.fabric;
  art.transport = problem.transport;
  art.overlap = problem.overlap;
  art.memmap_floor_proxy = problem.memmap_floor_proxy;
  art.mapping = problem.mapping;
  art.brick = problem.brick;
  art.page_size = problem.page_size;
  return art;
}

namespace {

/// %.17g: the shortest form strtod round-trips bit-exactly for every
/// finite double (same convention as the obs exporters).
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string fmt_vec(const Vec3& v) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "[%lld, %lld, %lld]",
                static_cast<long long>(v[0]), static_cast<long long>(v[1]),
                static_cast<long long>(v[2]));
  return buf;
}

}  // namespace

std::string to_json(const TunedArtifact& art) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"" << kArtifactSchema << "\",\n";
  os << "  \"problem\": {\n";
  os << "    \"machine\": \"" << art.machine << "\",\n";
  os << "    \"rank_dims\": " << fmt_vec(art.rank_dims) << ",\n";
  os << "    \"subdomain\": " << fmt_vec(art.subdomain) << ",\n";
  os << "    \"ghost\": " << art.ghost << ",\n";
  os << "    \"use125\": " << (art.use125 ? "true" : "false") << ",\n";
  os << "    \"method\": \"" << harness::method_name(art.method) << "\",\n";
  os << "    \"gpu\": \"" << gpu_name(art.gpu) << "\",\n";
  os << "    \"timesteps\": " << art.timesteps << ",\n";
  os << "    \"warmup_exchanges\": " << art.warmup_exchanges << ",\n";
  os << "    \"ranks_per_node\": " << art.ranks_per_node << ",\n";
  os << "    \"fabric\": \"" << netsim::fabric_name(art.fabric) << "\",\n";
  os << "    \"transport\": \"" << transport::kind_name(art.transport)
     << "\",\n";
  os << "    \"overlap\": " << (art.overlap ? "true" : "false") << ",\n";
  os << "    \"memmap_floor_proxy\": "
     << (art.memmap_floor_proxy ? "true" : "false") << "\n";
  os << "  },\n";
  os << "  \"choice\": {\n";
  os << "    \"layout\": \"" << art.layout_name << "\",\n";
  os << "    \"layout_order\": [";
  for (std::size_t i = 0; i < art.layout_order.size(); ++i)
    os << (i ? ", " : "") << art.layout_order[i];
  os << "],\n";
  os << "    \"mapping\": \"" << netsim::map_name(art.mapping) << "\",\n";
  os << "    \"brick\": " << art.brick << ",\n";
  os << "    \"page_size\": " << art.page_size << "\n";
  os << "  },\n";
  os << "  \"predicted\": {\n";
  os << "    \"total_seconds\": " << fmt_double(art.predicted_total_seconds)
     << ",\n";
  os << "    \"comm_per_step\": " << fmt_double(art.predicted_comm_per_step)
     << ",\n";
  os << "    \"gstencils\": " << fmt_double(art.predicted_gstencils) << "\n";
  os << "  },\n";
  os << "  \"search\": {\n";
  os << "    \"candidates\": " << art.candidates << ",\n";
  os << "    \"distinct\": " << art.distinct << ",\n";
  {
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%016" PRIx64, art.config_hash);
    os << "    \"config_hash\": \"" << buf << "\"\n";
  }
  os << "  }\n";
  os << "}\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// Minimal non-aborting JSON reader (objects / arrays / strings / numbers /
// bools). tests/json_mini.h is deliberately not reused here: it exits the
// process on malformed input, which is the right contract for a schema
// validator but not for a library that must report bad files gracefully.

namespace {

struct JValue {
  enum class Kind { Null, Bool, Num, Str, Arr, Obj } kind = Kind::Null;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JValue> arr;
  std::map<std::string, JValue> obj;
};

class JParser {
 public:
  explicit JParser(std::string_view s) : s_(s) {}

  std::optional<JValue> parse() {
    auto v = value();
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != s_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  std::string_view s_;
  std::size_t pos_ = 0;

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }
  bool eat(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool lit(std::string_view w) {
    if (s_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  std::optional<std::string> string() {
    if (!eat('"')) return std::nullopt;
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) return std::nullopt;
        char e = s_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          default: return std::nullopt;  // escapes we never emit
        }
      } else {
        out.push_back(c);
      }
    }
    if (pos_ >= s_.size()) return std::nullopt;
    ++pos_;  // closing quote
    return out;
  }

  std::optional<JValue> value() {
    skip_ws();
    if (pos_ >= s_.size()) return std::nullopt;
    JValue v;
    const char c = s_[pos_];
    if (c == '{') {
      ++pos_;
      v.kind = JValue::Kind::Obj;
      skip_ws();
      if (eat('}')) return v;
      while (true) {
        skip_ws();
        auto key = string();
        if (!key || !eat(':')) return std::nullopt;
        auto item = value();
        if (!item) return std::nullopt;
        v.obj.emplace(std::move(*key), std::move(*item));
        if (eat(',')) continue;
        if (eat('}')) return v;
        return std::nullopt;
      }
    }
    if (c == '[') {
      ++pos_;
      v.kind = JValue::Kind::Arr;
      skip_ws();
      if (eat(']')) return v;
      while (true) {
        auto item = value();
        if (!item) return std::nullopt;
        v.arr.push_back(std::move(*item));
        if (eat(',')) continue;
        if (eat(']')) return v;
        return std::nullopt;
      }
    }
    if (c == '"') {
      auto str = string();
      if (!str) return std::nullopt;
      v.kind = JValue::Kind::Str;
      v.str = std::move(*str);
      return v;
    }
    if (lit("true")) {
      v.kind = JValue::Kind::Bool;
      v.b = true;
      return v;
    }
    if (lit("false")) {
      v.kind = JValue::Kind::Bool;
      v.b = false;
      return v;
    }
    if (lit("null")) return v;
    // Number: strtod gives the bit-exact inverse of %.17g.
    char* end = nullptr;
    const std::string tail(s_.substr(pos_));
    v.num = std::strtod(tail.c_str(), &end);
    if (end == tail.c_str()) return std::nullopt;
    pos_ += static_cast<std::size_t>(end - tail.c_str());
    v.kind = JValue::Kind::Num;
    return v;
  }
};

const JValue* field(const JValue& obj, const char* key, JValue::Kind kind) {
  if (obj.kind != JValue::Kind::Obj) return nullptr;
  const auto it = obj.obj.find(key);
  if (it == obj.obj.end() || it->second.kind != kind) return nullptr;
  return &it->second;
}

bool get_i64(const JValue& obj, const char* key, std::int64_t* out) {
  const JValue* v = field(obj, key, JValue::Kind::Num);
  if (v == nullptr) return false;
  *out = static_cast<std::int64_t>(v->num);
  return static_cast<double>(*out) == v->num;  // reject non-integers
}

bool get_bool(const JValue& obj, const char* key, bool* out) {
  const JValue* v = field(obj, key, JValue::Kind::Bool);
  if (v == nullptr) return false;
  *out = v->b;
  return true;
}

bool get_double(const JValue& obj, const char* key, double* out) {
  const JValue* v = field(obj, key, JValue::Kind::Num);
  if (v == nullptr) return false;
  *out = v->num;
  return true;
}

bool get_str(const JValue& obj, const char* key, std::string* out) {
  const JValue* v = field(obj, key, JValue::Kind::Str);
  if (v == nullptr) return false;
  *out = v->str;
  return true;
}

bool get_vec(const JValue& obj, const char* key, Vec3* out) {
  const JValue* v = field(obj, key, JValue::Kind::Arr);
  if (v == nullptr || v->arr.size() != 3) return false;
  for (int a = 0; a < 3; ++a) {
    if (v->arr[static_cast<std::size_t>(a)].kind != JValue::Kind::Num)
      return false;
    (*out)[a] = static_cast<std::int64_t>(
        v->arr[static_cast<std::size_t>(a)].num);
  }
  return true;
}

}  // namespace

std::optional<TunedArtifact> from_json(std::string_view text) {
  auto root = JParser(text).parse();
  if (!root) return std::nullopt;
  std::string schema;
  if (!get_str(*root, "schema", &schema) || schema != kArtifactSchema)
    return std::nullopt;
  const JValue* problem = field(*root, "problem", JValue::Kind::Obj);
  const JValue* choice = field(*root, "choice", JValue::Kind::Obj);
  const JValue* predicted = field(*root, "predicted", JValue::Kind::Obj);
  const JValue* search = field(*root, "search", JValue::Kind::Obj);
  if (!problem || !choice || !predicted || !search) return std::nullopt;

  TunedArtifact art;
  std::string method, gpu, fabric, transport_name, mapping;
  std::int64_t timesteps = 0, warmup = 0, rpn = 0, page = 0;
  if (!get_str(*problem, "machine", &art.machine) ||
      !get_vec(*problem, "rank_dims", &art.rank_dims) ||
      !get_vec(*problem, "subdomain", &art.subdomain) ||
      !get_i64(*problem, "ghost", &art.ghost) ||
      !get_bool(*problem, "use125", &art.use125) ||
      !get_str(*problem, "method", &method) ||
      !get_str(*problem, "gpu", &gpu) ||
      !get_i64(*problem, "timesteps", &timesteps) ||
      !get_i64(*problem, "warmup_exchanges", &warmup) ||
      !get_i64(*problem, "ranks_per_node", &rpn) ||
      !get_str(*problem, "fabric", &fabric) ||
      !get_str(*problem, "transport", &transport_name) ||
      !get_bool(*problem, "overlap", &art.overlap) ||
      !get_bool(*problem, "memmap_floor_proxy", &art.memmap_floor_proxy))
    return std::nullopt;
  if (!machine_by_name(art.machine)) return std::nullopt;
  const auto m = parse_method(method);
  const auto g = parse_gpu(gpu);
  const auto f = netsim::parse_fabric(fabric);
  if (!m || !g || !f) return std::nullopt;
  art.method = *m;
  art.gpu = *g;
  art.fabric = *f;
  if (!transport::parse_kind(transport_name, &art.transport))
    return std::nullopt;
  art.timesteps = static_cast<int>(timesteps);
  art.warmup_exchanges = static_cast<int>(warmup);
  art.ranks_per_node = static_cast<int>(rpn);
  if (art.timesteps < 1 || art.warmup_exchanges < 0 || art.ranks_per_node < 1)
    return std::nullopt;

  if (!get_str(*choice, "layout", &art.layout_name) ||
      !get_str(*choice, "mapping", &mapping) ||
      !get_i64(*choice, "brick", &art.brick) ||
      !get_i64(*choice, "page_size", &page) ||
      page < 0)
    return std::nullopt;
  art.page_size = static_cast<std::size_t>(page);
  const auto mk = netsim::parse_mapping(mapping);
  if (!mk) return std::nullopt;
  art.mapping = *mk;
  const JValue* order = field(*choice, "layout_order", JValue::Kind::Arr);
  if (order == nullptr) return std::nullopt;
  LayoutSpec check_layout;
  for (const JValue& e : order->arr) {
    if (e.kind != JValue::Kind::Num || e.num < 0) return std::nullopt;
    const std::uint64_t raw = static_cast<std::uint64_t>(e.num);
    if (static_cast<double>(raw) != e.num || raw >= (1ull << 32))
      return std::nullopt;  // not an exact in-range mask
    art.layout_order.push_back(raw);
    check_layout.order.push_back(BitSet::from_raw(raw));
  }
  if (!art.layout_order.empty() && !check_layout.valid(3))
    return std::nullopt;

  if (!get_double(*predicted, "total_seconds", &art.predicted_total_seconds) ||
      !get_double(*predicted, "comm_per_step", &art.predicted_comm_per_step) ||
      !get_double(*predicted, "gstencils", &art.predicted_gstencils))
    return std::nullopt;

  std::string hash;
  if (!get_i64(*search, "candidates", &art.candidates) ||
      !get_i64(*search, "distinct", &art.distinct) ||
      !get_str(*search, "config_hash", &hash))
    return std::nullopt;
  if (hash.size() != 18 || hash[0] != '0' || hash[1] != 'x')
    return std::nullopt;
  char* end = nullptr;
  art.config_hash = std::strtoull(hash.c_str() + 2, &end, 16);
  if (end != hash.c_str() + hash.size()) return std::nullopt;
  return art;
}

std::optional<TunedArtifact> load_artifact(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return from_json(buf.str());
}

bool save_artifact(const TunedArtifact& art, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << to_json(art);
  return static_cast<bool>(out);
}

}  // namespace brickx::tune
