#include "tune/tuner.h"

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <exception>
#include <sstream>
#include <thread>

#include "common/error.h"
#include "core/layout.h"
#include "simmpi/fault.h"

namespace brickx::tune {

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string canonical_key(const harness::Config& cfg) {
  std::ostringstream os;
  os << "machine=" << cfg.machine.name
     << ",rpn=" << cfg.machine.net.ranks_per_node;
  os << ",ranks=" << cfg.rank_dims[0] << 'x' << cfg.rank_dims[1] << 'x'
     << cfg.rank_dims[2];
  os << ",sub=" << cfg.subdomain[0] << 'x' << cfg.subdomain[1] << 'x'
     << cfg.subdomain[2];
  os << ",brick=" << cfg.brick << ",ghost=" << cfg.ghost
     << ",use125=" << (cfg.use125 ? 1 : 0)
     << ",method=" << harness::method_name(cfg.method)
     << ",gpu=" << gpu_name(cfg.gpu) << ",steps=" << cfg.timesteps
     << ",warmup=" << cfg.warmup_exchanges << ",page=" << cfg.page_size;
  os << ",exec=" << (cfg.execute_kernels ? 1 : 0)
     << ",naive=" << (cfg.naive_kernels ? 1 : 0)
     << ",validate=" << (cfg.validate ? 1 : 0)
     << ",lexi=" << (cfg.lexicographic_layout ? 1 : 0);
  os << ",layout=";
  for (std::size_t i = 0; i < cfg.layout.order.size(); ++i)
    os << (i ? ":" : "") << cfg.layout.order[i].raw();
  os << ",proxy=" << (cfg.memmap_floor_proxy ? 1 : 0)
     << ",overlap=" << (cfg.overlap ? 1 : 0)
     << ",fabric=" << netsim::fabric_name(cfg.fabric)
     << ",map=" << netsim::map_name(cfg.mapping)
     << ",faults=" << (cfg.faults.any() ? mpi::describe(cfg.faults) : "none")
     << ",plan=" << (cfg.plan == harness::PlanMode::BuildOnce ? "once" : "round")
     << ",transport=" << transport::kind_name(cfg.transport);
  return os.str();
}

// ---------------------------------------------------------------------------
// EvalCache

EvalCache::EvalCache(bool verify_keys, int hash_bits)
    : verify_keys_(verify_keys),
      mask_(hash_bits >= 64 ? ~0ull : ((1ull << hash_bits) - 1)) {
  BX_CHECK(hash_bits >= 1 && hash_bits <= 64,
           "EvalCache: hash_bits out of range");
}

std::uint64_t EvalCache::bucket(std::string_view key) const {
  return fnv1a(key) & mask_;
}

std::optional<Evaluation> EvalCache::lookup(const std::string& key) {
  const std::uint64_t b = bucket(key);
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = buckets_.find(b);
  if (it == buckets_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  if (!verify_keys_) {
    // Hash-trusting fast path: the first bucket entry wins. Distinct
    // configs whose hashes collide WOULD alias here — which is exactly
    // what the serialize-and-compare mode makes impossible (and what the
    // cache tests demonstrate with a masked hash).
    ++stats_.hits;
    return it->second.front().eval;
  }
  for (const Entry& e : it->second) {
    if (e.key == key) {
      ++stats_.hits;
      return e.eval;
    }
  }
  ++stats_.collisions;  // bucket occupied by different canonical configs
  ++stats_.misses;
  return std::nullopt;
}

void EvalCache::store(const std::string& key, const Evaluation& ev) {
  const std::uint64_t b = bucket(key);
  std::lock_guard<std::mutex> lock(mu_);
  auto& chain = buckets_[b];
  for (const Entry& e : chain)
    if (e.key == key) return;  // racing workers computed the same key
  chain.push_back(Entry{key, ev});
}

EvalCache::Stats EvalCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

// ---------------------------------------------------------------------------
// SearchSpace

SearchSpace SearchSpace::standard(const harness::Config& problem,
                                  std::int64_t layout_budget,
                                  std::uint64_t layout_seed) {
  using harness::Method;
  SearchSpace s;
  const bool is_brick =
      problem.method == Method::Basic || problem.method == Method::Layout ||
      problem.method == Method::MemMap || problem.method == Method::Shift ||
      problem.method == Method::Network;
  if (is_brick) {
    s.layouts.push_back({"surface3d", surface3d()});
    s.layouts.push_back({"lexicographic", lexicographic_layout(3)});
    LayoutChoice hc{"hillclimb",
                    optimize_layout(3, layout_budget, layout_seed)};
    bool dup = false;
    for (const LayoutChoice& l : s.layouts)
      dup = dup || l.spec.order == hc.spec.order;
    if (!dup) s.layouts.push_back(std::move(hc));
  } else {
    // Array layouts have no region permutation; keep the harness default.
    s.layouts.push_back({"n/a", LayoutSpec{}});
  }
  if (problem.fabric == netsim::FabricKind::Flat) {
    s.mappings = {netsim::MapKind::Block};  // the flat model ignores mapping
  } else {
    s.mappings = {netsim::MapKind::Block, netsim::MapKind::RoundRobin,
                  netsim::MapKind::Greedy, netsim::MapKind::Rcb,
                  netsim::MapKind::Embed};
  }
  if (is_brick) {
    for (const std::int64_t b : {std::int64_t{4}, std::int64_t{8}}) {
      bool ok = problem.ghost % b == 0;
      for (int a = 0; a < 3; ++a) ok = ok && problem.subdomain[a] % b == 0;
      if (ok) s.bricks.push_back(b);
    }
  }
  if (s.bricks.empty()) s.bricks.push_back(problem.brick);
  if (problem.method == Method::MemMap) {
    s.pages = {0, 16384, 65536};
    if (std::find(s.pages.begin(), s.pages.end(), problem.page_size) ==
        s.pages.end())
      s.pages.push_back(problem.page_size);
  } else {
    s.pages = {problem.page_size};
  }
  return s;
}

// ---------------------------------------------------------------------------
// tune()

namespace {

struct Candidate {
  int layout = 0;
  int mapping = 0;
  int brick = 0;
  int page = 0;
};

harness::Config candidate_config(const harness::Config& problem,
                                 const SearchSpace& space,
                                 const Candidate& c) {
  harness::Config cfg = problem;
  cfg.layout = space.layouts[static_cast<std::size_t>(c.layout)].spec;
  cfg.mapping = space.mappings[static_cast<std::size_t>(c.mapping)];
  cfg.brick = space.bricks[static_cast<std::size_t>(c.brick)];
  cfg.page_size = space.pages[static_cast<std::size_t>(c.page)];
  return cfg;
}

Evaluation evaluate(const harness::Config& cfg) {
  const harness::Result res = harness::run(cfg);
  Evaluation ev;
  ev.total_seconds = res.total_seconds;
  ev.comm_per_step = res.comm_per_step;
  ev.gstencils = res.gstencils;
  return ev;
}

}  // namespace

TuneResult tune(const harness::Config& problem, const SearchSpace& space,
                int threads, EvalCache* cache) {
  BX_CHECK(!space.layouts.empty() && !space.mappings.empty() &&
               !space.bricks.empty() && !space.pages.empty(),
           "tune: empty search space");

  // Enumeration order is the determinism anchor: candidate index j is the
  // argmin tie-break, whatever the worker schedule did.
  std::vector<Candidate> cands;
  std::vector<std::string> keys;
  for (int l = 0; l < static_cast<int>(space.layouts.size()); ++l)
    for (int m = 0; m < static_cast<int>(space.mappings.size()); ++m)
      for (int b = 0; b < static_cast<int>(space.bricks.size()); ++b)
        for (int p = 0; p < static_cast<int>(space.pages.size()); ++p) {
          const Candidate c{l, m, b, p};
          cands.push_back(c);
          keys.push_back(canonical_key(candidate_config(problem, space, c)));
        }
  const int n = static_cast<int>(cands.size());

  std::vector<Evaluation> evals(static_cast<std::size_t>(n));
  std::atomic<int> next{0};
  std::atomic<std::int64_t> runs{0};
  std::exception_ptr first_error;
  std::mutex err_mu;
  auto worker = [&] {
    while (true) {
      const int j = next.fetch_add(1);
      if (j >= n) return;
      try {
        const std::string& key = keys[static_cast<std::size_t>(j)];
        if (cache != nullptr) {
          if (auto hit = cache->lookup(key)) {
            evals[static_cast<std::size_t>(j)] = *hit;
            continue;
          }
        }
        const Evaluation ev = evaluate(
            candidate_config(problem, space, cands[static_cast<std::size_t>(j)]));
        runs.fetch_add(1);
        evals[static_cast<std::size_t>(j)] = ev;
        if (cache != nullptr) cache->store(key, ev);
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mu);
        if (!first_error) first_error = std::current_exception();
        return;
      }
    }
  };
  const int nthreads = std::max(1, std::min(threads, n));
  if (nthreads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(nthreads));
    for (int t = 0; t < nthreads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  if (first_error) std::rethrow_exception(first_error);

  int best = 0;
  for (int j = 1; j < n; ++j)
    if (evals[static_cast<std::size_t>(j)].total_seconds <
        evals[static_cast<std::size_t>(best)].total_seconds)
      best = j;  // strict <: ties keep the lowest enumeration index

  // Distinct canonical keys among the candidates — deterministic, unlike
  // the cache's scheduling-dependent hit/miss split.
  std::vector<std::string> sorted_keys = keys;
  std::sort(sorted_keys.begin(), sorted_keys.end());
  const std::int64_t distinct = static_cast<std::int64_t>(
      std::unique(sorted_keys.begin(), sorted_keys.end()) -
      sorted_keys.begin());

  const Candidate& win = cands[static_cast<std::size_t>(best)];
  TuneResult out;
  out.best_config = candidate_config(problem, space, win);
  out.best = evals[static_cast<std::size_t>(best)];
  out.best_index = best;
  out.layout_name = space.layouts[static_cast<std::size_t>(win.layout)].name;
  out.mapping = space.mappings[static_cast<std::size_t>(win.mapping)];
  out.brick = space.bricks[static_cast<std::size_t>(win.brick)];
  out.page_size = space.pages[static_cast<std::size_t>(win.page)];
  out.candidates = n;
  out.distinct = distinct;
  out.evaluated = runs.load();

  TunedArtifact art = artifact_from(problem);
  art.layout_name = out.layout_name;
  for (const BitSet& s : out.best_config.layout.order)
    art.layout_order.push_back(s.raw());
  art.mapping = out.mapping;
  art.brick = out.brick;
  art.page_size = out.page_size;
  art.predicted_total_seconds = out.best.total_seconds;
  art.predicted_comm_per_step = out.best.comm_per_step;
  art.predicted_gstencils = out.best.gstencils;
  art.candidates = out.candidates;
  art.distinct = out.distinct;
  art.config_hash = fnv1a(keys[static_cast<std::size_t>(best)]);
  out.artifact = art;
  return out;
}

}  // namespace brickx::tune
