#pragma once

// The tuned-config artifact: the autotuner's output, a byte-deterministic
// JSON document describing (a) the problem that was tuned, (b) the winning
// (layout, mapping, brick, page-size) choice, (c) the cost the model
// predicts for it, and (d) search telemetry. The writer emits a fixed key
// order with %.17g doubles, so equal artifacts are equal byte-for-byte and
// a replayed artifact reproduces the predicted cost bit-exactly (the
// virtual-clock harness is deterministic). See DESIGN.md §15.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/vec.h"
#include "harness/experiment.h"

namespace brickx::tune {

inline constexpr std::string_view kArtifactSchema = "brickx-tuned-config-v1";

struct TunedArtifact {
  // --- problem: what was tuned (everything else about the Config is the
  // harness default; execute_kernels is false — the tuner evaluates the
  // cost model, tests validate the math).
  std::string machine = "theta-knl";  ///< model::Machine::name
  Vec3 rank_dims{1, 1, 1};
  Vec3 subdomain{8, 8, 8};
  std::int64_t ghost = 8;
  bool use125 = false;
  harness::Method method = harness::Method::MemMap;
  harness::GpuMode gpu = harness::GpuMode::None;
  int timesteps = 8;
  int warmup_exchanges = 1;
  int ranks_per_node = 1;  ///< effective machine.net.ranks_per_node
  netsim::FabricKind fabric = netsim::FabricKind::Flat;
  transport::Kind transport = transport::Kind::Flat;
  bool overlap = false;
  bool memmap_floor_proxy = false;

  // --- choice: the four tuned levers.
  std::string layout_name = "surface3d";
  /// LayoutSpec order as BitSet::raw() masks; empty = harness default.
  std::vector<std::uint64_t> layout_order;
  netsim::MapKind mapping = netsim::MapKind::Block;
  std::int64_t brick = 8;
  std::size_t page_size = 0;

  // --- prediction under the ContentionFabric cost model.
  double predicted_total_seconds = 0.0;
  double predicted_comm_per_step = 0.0;
  double predicted_gstencils = 0.0;

  // --- search telemetry (all deterministic; wall-clock throughput goes to
  // BENCH_autotune.json, never into the artifact).
  std::int64_t candidates = 0;  ///< configs enumerated
  std::int64_t distinct = 0;    ///< distinct canonical keys among them
  std::uint64_t config_hash = 0;  ///< FNV-1a of the winner's canonical key
};

/// "none" / "cuda-aware" / "unified" / "staged".
const char* gpu_name(harness::GpuMode g);
std::optional<harness::GpuMode> parse_gpu(std::string_view s);
/// Inverse of harness::method_name.
std::optional<harness::Method> parse_method(std::string_view s);
/// Machine preset by Machine::name ("theta-knl" / "summit-v100" /
/// "summit-v100-cumemmap").
std::optional<model::Machine> machine_by_name(std::string_view s);

/// The problem Config the artifact describes, choice NOT applied:
/// hand-picked defaults (surface3d layout, block mapping, the problem's
/// brick/page) — the baseline the self-checks compare against.
harness::Config problem_config(const TunedArtifact& art);

/// Apply the artifact's (layout, mapping, brick, page) choice to `cfg`.
/// This is what `--tuned=FILE` does to every bench config.
void apply_choice(const TunedArtifact& art, harness::Config& cfg);

/// problem_config + apply_choice: the exact Config the tuner evaluated.
harness::Config tuned_config(const TunedArtifact& art);

/// Fill the problem section from a Config (the tuner's input).
TunedArtifact artifact_from(const harness::Config& problem);

/// Byte-deterministic JSON (fixed key order, 2-space indent, %.17g
/// doubles, hex config hash, trailing newline).
std::string to_json(const TunedArtifact& art);

/// Inverse of to_json; nullopt on malformed JSON, unknown enum names, an
/// invalid layout permutation, or a schema-version mismatch. Tolerant of
/// key order and extra whitespace; strtod round-trips the %.17g doubles
/// bit-exactly.
std::optional<TunedArtifact> from_json(std::string_view text);

/// File I/O wrappers (nullopt/false on I/O failure).
std::optional<TunedArtifact> load_artifact(const std::string& path);
bool save_artifact(const TunedArtifact& art, const std::string& path);

}  // namespace brickx::tune
