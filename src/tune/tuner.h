#pragma once

// Joint autotuner over (layout permutation × rank-to-node mapping × brick
// size × page size) against the virtual-clock cost model (DESIGN.md §15).
// Candidate evaluations run in parallel across worker threads and are
// memoized by *canonical config serialization*: the cache key is the full
// canonical string, so two distinct configs can never alias — the FNV-1a
// hash only buckets entries, and every bucket hit compares serializations
// before trusting a stored result. The search result is deterministic and
// invariant under the worker-thread count (argmin with candidate-index
// tie-break over results indexed by enumeration order).

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "harness/experiment.h"
#include "tune/artifact.h"

namespace brickx::tune {

/// Canonical, byte-stable serialization of every Config field the
/// evaluator reads. Equal strings <=> the evaluator sees equal problems
/// (the machine is identified by preset name + ranks_per_node override;
/// other Machine fields are preset constants).
std::string canonical_key(const harness::Config& cfg);

/// FNV-1a 64-bit, the artifact's reported config hash and the cache's
/// bucketing hash.
std::uint64_t fnv1a(std::string_view s);

/// What one candidate evaluation produces (all virtual-time).
struct Evaluation {
  double total_seconds = 0.0;
  double comm_per_step = 0.0;
  double gstencils = 0.0;
  bool operator==(const Evaluation&) const = default;
};

/// Memo cache for candidate evaluations, shared across tune() calls and
/// safe for concurrent workers. `verify_keys` (the default) is the
/// serialize-and-compare mode: a bucket hit only counts as a cache hit
/// when the stored canonical string equals the probe's, so hash
/// collisions on distinct configs are structurally impossible — they are
/// detected, counted, and chained instead of aliased. `verify_keys =
/// false` trusts the hash alone (the fast path whose unsafety the tests
/// demonstrate). `hash_bits < 64` masks the hash — a test hook to force
/// collisions.
class EvalCache {
 public:
  struct Stats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t collisions = 0;  ///< bucket hits whose keys differed
  };

  explicit EvalCache(bool verify_keys = true, int hash_bits = 64);

  std::optional<Evaluation> lookup(const std::string& key);
  void store(const std::string& key, const Evaluation& ev);
  [[nodiscard]] Stats stats() const;

 private:
  struct Entry {
    std::string key;
    Evaluation eval;
  };
  [[nodiscard]] std::uint64_t bucket(std::string_view key) const;

  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, std::vector<Entry>> buckets_;
  Stats stats_;
  bool verify_keys_;
  std::uint64_t mask_;
};

/// One point of the search space.
struct LayoutChoice {
  std::string name;  ///< "surface3d" / "lexicographic" / "hillclimb" / "n/a"
  LayoutSpec spec;   ///< empty order = keep the harness default
};

struct SearchSpace {
  std::vector<LayoutChoice> layouts;
  std::vector<netsim::MapKind> mappings;
  std::vector<std::int64_t> bricks;
  std::vector<std::size_t> pages;

  [[nodiscard]] std::int64_t candidate_count() const {
    return static_cast<std::int64_t>(layouts.size() * mappings.size() *
                                     bricks.size() * pages.size());
  }

  /// The standard joint space for `problem`:
  ///  - layouts: surface3d, lexicographic, and an optimize_layout
  ///    hill-climb (budget/seed below), deduplicated by permutation;
  ///    collapsed to the harness default for non-brick methods (arrays
  ///    have no region layout);
  ///  - mappings: all five strategies on a routed fabric, block alone on
  ///    the flat model (which ignores mapping);
  ///  - bricks: {4, 8} filtered by ghost/subdomain divisibility (the
  ///    problem's own brick for non-brick methods);
  ///  - pages: {0, 16384, 65536} plus the problem's page size for MemMap,
  ///    the problem's page size alone otherwise.
  /// The hand-picked bench configs (surface3d, block, brick 8, page 0)
  /// are members whenever they are valid — the self-check's "tuned meets
  /// or beats hand-picked" is structural, not statistical.
  static SearchSpace standard(const harness::Config& problem,
                              std::int64_t layout_budget = 2000,
                              std::uint64_t layout_seed = 1);
};

/// The winning point plus everything needed to report and replay it.
struct TuneResult {
  harness::Config best_config;  ///< problem + winning choice
  Evaluation best;
  std::int64_t best_index = -1;  ///< enumeration index of the winner
  std::string layout_name;
  netsim::MapKind mapping = netsim::MapKind::Block;
  std::int64_t brick = 8;
  std::size_t page_size = 0;
  std::int64_t candidates = 0;  ///< enumerated (== artifact.candidates)
  std::int64_t distinct = 0;    ///< distinct canonical keys among them
  std::int64_t evaluated = 0;   ///< harness runs actually performed
  TunedArtifact artifact;       ///< byte-deterministic replay document
};

/// Exhaustive search over `space` for `problem` (whose layout / mapping /
/// brick / page fields are treated as the hand-picked baseline, not as
/// constraints). `threads` only changes wall-clock: results, including
/// the artifact bytes, are identical for any thread count. `cache` may be
/// nullptr (cold evaluation) or shared across calls (memoized — bit-
/// identical results by the cache's key-equality contract).
TuneResult tune(const harness::Config& problem, const SearchSpace& space,
                int threads = 1, EvalCache* cache = nullptr);

}  // namespace brickx::tune
