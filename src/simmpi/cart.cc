#include "simmpi/cart.h"

#include <algorithm>

#include "common/error.h"

namespace brickx::mpi {

template <int D>
Vec<D> dims_create(int nranks) {
  BX_CHECK(nranks >= 1, "dims_create: nranks must be positive");
  std::array<std::int64_t, D> dims;
  dims.fill(1);
  int n = nranks;
  // Repeatedly assign the largest prime factor to the currently smallest
  // dimension — produces the most cubic factorization.
  std::vector<int> factors;
  for (int f = 2; f * f <= n; ++f)
    while (n % f == 0) {
      factors.push_back(f);
      n /= f;
    }
  if (n > 1) factors.push_back(n);
  std::sort(factors.rbegin(), factors.rend());
  for (int f : factors) {
    auto it = std::min_element(dims.begin(), dims.end());
    *it *= f;
  }
  // Axis 0 is the contiguous data axis; give it the largest factor so the
  // per-rank subdomain keeps its longest extent on the strided axes.
  std::sort(dims.begin(), dims.end(), std::greater<>());
  Vec<D> r;
  for (int i = 0; i < D; ++i) r[i] = dims[static_cast<std::size_t>(i)];
  return r;
}

template Vec<1> dims_create<1>(int);
template Vec<2> dims_create<2>(int);
template Vec<3> dims_create<3>(int);
template Vec<4> dims_create<4>(int);

template <int D>
Cart<D>::Cart(Comm& comm, const Vec<D>& dims) : comm_(&comm), dims_(dims) {
  BX_CHECK(dims.prod() == comm.size(), "Cart dims do not match comm size");
  coords_ = delinearize<D>(comm.rank(), dims_);
}

template <int D>
std::vector<BitSet> Cart<D>::all_directions() {
  std::vector<BitSet> out;
  const Vec<D> ext = Vec<D>::fill(3);
  for (std::int64_t i = 0; i < ext.prod(); ++i) {
    const Vec<D> p = delinearize(i, ext);
    BitSet s;
    for (int a = 0; a < D; ++a) {
      if (p[a] == 0) s.set(-(a + 1));
      if (p[a] == 2) s.set(a + 1);
    }
    if (!s.empty()) out.push_back(s);
  }
  return out;
}

template class Cart<1>;
template class Cart<2>;
template class Cart<3>;
template class Cart<4>;

}  // namespace brickx::mpi
