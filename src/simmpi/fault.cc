#include "simmpi/fault.h"

#include <cmath>
#include <cstdio>
#include <string>

#include "common/error.h"

namespace brickx::mpi {

namespace {

// splitmix64 finalizer: the hash behind the interleaving-independent
// schedule (same mixer as common/rng.h, applied to a keyed state).
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t edge_hash(std::uint64_t seed, int src, int dst, int tag,
                        std::uint64_t ordinal, std::uint64_t salt) {
  std::uint64_t h = mix64(seed ^ (salt * 0xd6e8feb86659fd93ull));
  h = mix64(h ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)));
  h = mix64(h ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst)));
  h = mix64(h ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag)));
  return mix64(h ^ ordinal);
}

double to_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

const char* fault_name(FaultKind k) {
  switch (k) {
    case FaultKind::None:
      return "none";
    case FaultKind::Delay:
      return "delay";
    case FaultKind::Drop:
      return "drop";
    case FaultKind::Duplicate:
      return "duplicate";
    case FaultKind::Reorder:
      return "reorder";
    case FaultKind::Truncate:
      return "truncate";
    case FaultKind::Corrupt:
      return "corrupt";
  }
  return "?";
}

bool FaultSpec::any() const {
  return delay > 0 || drop > 0 || duplicate > 0 || reorder > 0 ||
         truncate > 0 || corrupt > 0;
}

bool FaultSpec::corrupting() const {
  return drop > 0 || duplicate > 0 || truncate > 0 || corrupt > 0;
}

std::optional<FaultSpec> parse_fault_spec(std::string_view s) {
  FaultSpec spec;
  if (s.empty() || s == "none") return spec;
  while (!s.empty()) {
    const std::size_t comma = s.find(',');
    std::string_view item = s.substr(0, comma);
    s = comma == std::string_view::npos ? std::string_view{}
                                        : s.substr(comma + 1);
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos) return std::nullopt;
    const std::string_view key = item.substr(0, eq);
    const std::string val(item.substr(eq + 1));
    try {
      if (key == "seed") {
        spec.seed = std::stoull(val);
      } else if (key == "max-delay") {
        spec.max_delay = std::stod(val);
      } else {
        double* p = key == "delay"       ? &spec.delay
                    : key == "drop"      ? &spec.drop
                    : key == "duplicate" ? &spec.duplicate
                    : key == "reorder"   ? &spec.reorder
                    : key == "truncate"  ? &spec.truncate
                    : key == "corrupt"   ? &spec.corrupt
                                         : nullptr;
        if (p == nullptr) return std::nullopt;
        *p = std::stod(val);
        if (*p < 0.0 || *p > 1.0) return std::nullopt;
      }
    } catch (const std::exception&) {
      return std::nullopt;
    }
  }
  if (spec.delay + spec.drop + spec.duplicate + spec.reorder + spec.truncate +
          spec.corrupt >
      1.0 + 1e-12)
    return std::nullopt;
  return spec;
}

std::string describe(const FaultSpec& spec) {
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "seed=%llu,delay=%g,drop=%g,duplicate=%g,reorder=%g,"
                "truncate=%g,corrupt=%g,max-delay=%g",
                static_cast<unsigned long long>(spec.seed), spec.delay,
                spec.drop, spec.duplicate, spec.reorder, spec.truncate,
                spec.corrupt, spec.max_delay);
  return buf;
}

std::uint64_t checksum_bytes(const void* p, std::size_t n) {
  const auto* b = static_cast<const unsigned char*>(p);
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= b[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

FaultInjector::FaultInjector(FaultSpec spec) : spec_(spec) {
  BX_CHECK(spec_.delay + spec_.drop + spec_.duplicate + spec_.reorder +
                   spec_.truncate + spec_.corrupt <=
               1.0 + 1e-12,
           "fault probabilities must sum to at most 1");
  BX_CHECK(spec_.max_delay > 0, "max_delay must be positive");
}

FaultInjector::Decision FaultInjector::decide(int src, int dst, int tag,
                                              std::size_t bytes) {
  std::uint64_t ordinal;
  {
    std::lock_guard lk(mu_);
    ordinal = edge_ordinal_[{src, dst, tag}]++;
    ++counts_.messages;
  }
  const double u = to_unit(edge_hash(spec_.seed, src, dst, tag, ordinal, 1));
  Decision d;
  double acc = 0.0;
  const struct {
    FaultKind kind;
    double p;
  } table[] = {
      {FaultKind::Delay, spec_.delay},         {FaultKind::Drop, spec_.drop},
      {FaultKind::Duplicate, spec_.duplicate}, {FaultKind::Reorder, spec_.reorder},
      {FaultKind::Truncate, spec_.truncate},   {FaultKind::Corrupt, spec_.corrupt},
  };
  for (const auto& row : table) {
    acc += row.p;
    if (row.p > 0 && u < acc) {
      d.kind = row.kind;
      break;
    }
  }
  if (bytes == 0 &&
      (d.kind == FaultKind::Truncate || d.kind == FaultKind::Corrupt))
    d.kind = FaultKind::None;
  if (d.kind == FaultKind::None) return d;

  const std::uint64_t h2 = edge_hash(spec_.seed, src, dst, tag, ordinal, 2);
  std::lock_guard lk(mu_);
  switch (d.kind) {
    case FaultKind::Delay:
      // Uniform in (0, max_delay]: never exactly zero, so a fired delay
      // always moves the arrival.
      d.delay = spec_.max_delay * (1.0 - to_unit(h2));
      ++counts_.delayed;
      break;
    case FaultKind::Drop:
      ++counts_.dropped;
      break;
    case FaultKind::Duplicate:
      ++counts_.duplicated;
      break;
    case FaultKind::Reorder:
      ++counts_.reordered;
      break;
    case FaultKind::Truncate:
      d.truncate_to = static_cast<std::size_t>(h2 % bytes);
      ++counts_.truncated;
      break;
    case FaultKind::Corrupt:
      d.corrupt_at = static_cast<std::size_t>(h2 % bytes);
      ++counts_.corrupted;
      break;
    case FaultKind::None:
      break;
  }
  return d;
}

FaultCounts FaultInjector::counts() const {
  std::lock_guard lk(mu_);
  return counts_;
}

void FaultInjector::note_detected() {
  std::lock_guard lk(mu_);
  ++counts_.detected;
}

void FaultInjector::note_leftover(std::int64_t n) {
  std::lock_guard lk(mu_);
  counts_.leftover += n;
}

void FaultInjector::reset() {
  std::lock_guard lk(mu_);
  edge_ordinal_.clear();
  counts_ = FaultCounts{};
}

}  // namespace brickx::mpi
