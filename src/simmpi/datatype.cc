#include "simmpi/datatype.h"

#include <cstring>

#include "common/error.h"
#include "obs/obs.h"

namespace brickx::mpi {

void FlatType::gather(const std::byte* base, std::byte* out) const {
  std::size_t at = 0;
  for (const auto& b : blocks) {
    std::memcpy(out + at, base + b.offset, b.length);
    at += b.length;
  }
  obs::counter_add("dt.gather_blocks",
                   static_cast<std::int64_t>(blocks.size()));
  obs::counter_add("dt.gather_bytes", static_cast<std::int64_t>(at));
}

void FlatType::scatter(const std::byte* in, std::byte* base) const {
  std::size_t at = 0;
  for (const auto& b : blocks) {
    std::memcpy(base + b.offset, in + at, b.length);
    at += b.length;
  }
  obs::counter_add("dt.scatter_blocks",
                   static_cast<std::int64_t>(blocks.size()));
  obs::counter_add("dt.scatter_bytes", static_cast<std::int64_t>(at));
}

Datatype Datatype::contiguous(std::size_t count, std::size_t elem_size) {
  Datatype t;
  if (count > 0) t.flat_->blocks.push_back({0, count * elem_size});
  t.flat_->total_bytes = count * elem_size;
  return t;
}

Datatype Datatype::vector(std::size_t count, std::size_t blocklen,
                          std::size_t stride, std::size_t elem_size) {
  BX_CHECK(blocklen <= stride || count <= 1, "vector blocks overlap");
  Datatype t;
  for (std::size_t i = 0; i < count; ++i)
    t.flat_->blocks.push_back({i * stride * elem_size, blocklen * elem_size});
  t.flat_->total_bytes = count * blocklen * elem_size;
  // Merge adjacent blocks (blocklen == stride) into one, as real MPI
  // datatype engines normalize.
  std::vector<FlatType::Block> merged;
  for (const auto& b : t.flat_->blocks) {
    if (!merged.empty() &&
        merged.back().offset + merged.back().length == b.offset) {
      merged.back().length += b.length;
    } else {
      merged.push_back(b);
    }
  }
  t.flat_->blocks = std::move(merged);
  return t;
}

template <int D>
Datatype Datatype::subarray(const Vec<D>& sizes, const Vec<D>& sub,
                            const Vec<D>& start, std::size_t elem_size) {
  for (int i = 0; i < D; ++i) {
    BX_CHECK(start[i] >= 0 && start[i] + sub[i] <= sizes[i],
             "subarray out of bounds");
  }
  Datatype t;
  if (sub.prod() == 0) return t;
  // Walk all positions with axis 0 collapsed into contiguous runs, merging
  // adjacent runs (covers the "subarray spans full lower axes" case where a
  // run extends across axis-0 row boundaries).
  Box<D> upper;  // iterate axes 1..D-1; axis 0 collapsed
  for (int i = 0; i < D; ++i) {
    upper.lo[i] = i == 0 ? 0 : start[i];
    upper.hi[i] = i == 0 ? 1 : start[i] + sub[i];
  }
  for_each(upper, [&](const Vec<D>& p) {
    Vec<D> q = p;
    q[0] = start[0];
    const std::size_t off =
        static_cast<std::size_t>(linearize(q, sizes)) * elem_size;
    const std::size_t len = static_cast<std::size_t>(sub[0]) * elem_size;
    if (!t.flat_->blocks.empty() &&
        t.flat_->blocks.back().offset + t.flat_->blocks.back().length == off) {
      t.flat_->blocks.back().length += len;
    } else {
      t.flat_->blocks.push_back({off, len});
    }
  });
  t.flat_->total_bytes = static_cast<std::size_t>(sub.prod()) * elem_size;
  return t;
}

template Datatype Datatype::subarray<1>(const Vec<1>&, const Vec<1>&,
                                        const Vec<1>&, std::size_t);
template Datatype Datatype::subarray<2>(const Vec<2>&, const Vec<2>&,
                                        const Vec<2>&, std::size_t);
template Datatype Datatype::subarray<3>(const Vec<3>&, const Vec<3>&,
                                        const Vec<3>&, std::size_t);
template Datatype Datatype::subarray<4>(const Vec<4>&, const Vec<4>&,
                                        const Vec<4>&, std::size_t);

Datatype Datatype::concat(
    const std::vector<std::pair<std::size_t, Datatype>>& parts) {
  Datatype t;
  for (const auto& [disp, part] : parts) {
    for (const auto& b : part.flat().blocks) {
      const std::size_t off = disp + b.offset;
      if (!t.flat_->blocks.empty() &&
          t.flat_->blocks.back().offset + t.flat_->blocks.back().length ==
              off) {
        t.flat_->blocks.back().length += b.length;
      } else {
        t.flat_->blocks.push_back({off, b.length});
      }
    }
    t.flat_->total_bytes += part.size();
  }
  return t;
}

std::size_t Datatype::extent() const {
  std::size_t e = 0;
  for (const auto& b : flat_->blocks) e = std::max(e, b.offset + b.length);
  return e;
}

}  // namespace brickx::mpi
