#pragma once

// Deterministic message-fault injection for the simulated MPI runtime.
//
// A FaultInjector installed on a Runtime (set_fault_injector) turns two
// things on at once:
//
//  1. An *integrity layer*: every envelope is stamped with a per-edge
//     sequence number and an FNV-1a payload checksum at send, and verified
//     at the matching wait. Violations surface as brickx::Error with a
//     "fault detected:" diagnostic — never as silently wrong data.
//  2. A *fault schedule*: the k-th message on edge (src, dst, tag) is
//     perturbed according to a pure hash of (seed, src, dst, tag, k), so
//     the schedule is bit-reproducible regardless of how the rank threads
//     interleave. Kinds:
//       Delay     — add virtual seconds to the receiver-visible arrival;
//                   data is untouched, only the clock shifts.
//       Drop      — the payload never arrives; the receiver surfaces the
//                   loss as an error (modeling a reliability-layer
//                   timeout) instead of hanging the simulation.
//       Duplicate — the envelope is delivered twice; the replay trips the
//                   sequence check at a later matching receive, or is
//                   swept and counted as leftover after run().
//       Reorder   — the envelope is held by the sender and released after
//                   its next send to the same destination (or at its next
//                   wait/collective, whichever comes first). Matching is
//                   by (source, tag), so this is harmless unless two
//                   messages share an edge — where the sequence check
//                   fires.
//       Truncate  — the payload is cut short; caught by the size check.
//       Corrupt   — one payload byte is flipped; caught by the checksum.
//
// With a schedule of only Delay (and/or Reorder) faults, delivered data is
// bit-identical to the fault-free run — src/check's oracle asserts exactly
// that, and that every corrupting kind is *detected*.

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <tuple>

namespace brickx::mpi {

enum class FaultKind : std::uint8_t {
  None,
  Delay,
  Drop,
  Duplicate,
  Reorder,
  Truncate,
  Corrupt,
};

const char* fault_name(FaultKind k);

/// Per-message fault probabilities (each in [0, 1], summing to <= 1) plus
/// the schedule seed. All-zero probabilities mean "no injector needed";
/// harness::run only installs one when any() is true.
struct FaultSpec {
  std::uint64_t seed = 1;
  double delay = 0.0;
  double drop = 0.0;
  double duplicate = 0.0;
  double reorder = 0.0;
  double truncate = 0.0;
  double corrupt = 0.0;
  /// Injected delays are uniform in (0, max_delay] virtual seconds.
  double max_delay = 5e-5;

  [[nodiscard]] bool any() const;
  /// True when a kind that can change or lose payload bytes is enabled
  /// (anything but Delay/Reorder) — such schedules must end in detection.
  [[nodiscard]] bool corrupting() const;
};

/// Parse "delay=0.3,corrupt=0.01,seed=7,max-delay=1e-5" (any subset of
/// keys: delay drop duplicate reorder truncate corrupt seed max-delay);
/// "none" or "" yields the all-zero spec. std::nullopt on malformed input.
std::optional<FaultSpec> parse_fault_spec(std::string_view s);
std::string describe(const FaultSpec& spec);

/// What actually happened, readable after run() from any thread.
struct FaultCounts {
  std::int64_t messages = 0;  ///< messages the injector inspected
  std::int64_t delayed = 0;
  std::int64_t dropped = 0;
  std::int64_t duplicated = 0;
  std::int64_t reordered = 0;
  std::int64_t truncated = 0;
  std::int64_t corrupted = 0;
  std::int64_t detected = 0;  ///< integrity violations raised by receivers
  std::int64_t leftover = 0;  ///< undelivered envelopes swept after run()

  [[nodiscard]] std::int64_t injected() const {
    return delayed + dropped + duplicated + reordered + truncated + corrupted;
  }
  /// Faults that must surface as an error if their message is received.
  [[nodiscard]] std::int64_t corrupting_injected() const {
    return dropped + truncated + corrupted;
  }
};

/// FNV-1a 64-bit over a byte range — the payload checksum of the
/// integrity layer.
std::uint64_t checksum_bytes(const void* p, std::size_t n);

/// Seeded, thread-safe, interleaving-independent fault schedule. The
/// caller owns it (like the obs Collector) and reads counts() after run().
class FaultInjector {
 public:
  explicit FaultInjector(FaultSpec spec);

  [[nodiscard]] const FaultSpec& spec() const { return spec_; }

  struct Decision {
    FaultKind kind = FaultKind::None;
    double delay = 0.0;          ///< Delay: virtual seconds to add
    std::size_t truncate_to = 0; ///< Truncate: new payload size (< bytes)
    std::size_t corrupt_at = 0;  ///< Corrupt: payload byte index to flip
  };

  /// Decide the fate of the next message on edge (src, dst, tag). The
  /// result depends only on (spec.seed, src, dst, tag, per-edge ordinal) —
  /// never on timing. Zero-byte payloads downgrade Truncate/Corrupt to
  /// None (there is nothing to damage).
  Decision decide(int src, int dst, int tag, std::size_t bytes);

  [[nodiscard]] FaultCounts counts() const;
  void note_detected();
  void note_leftover(std::int64_t n);
  /// Forget per-edge ordinals and counts (schedule restarts from the top).
  void reset();

 private:
  FaultSpec spec_;
  mutable std::mutex mu_;
  std::map<std::tuple<int, int, int>, std::uint64_t> edge_ordinal_;
  FaultCounts counts_;
};

}  // namespace brickx::mpi
