#pragma once

#include <cstdint>

namespace brickx::mpi {

/// Classification of the memory a message buffer lives in. Host is ordinary
/// memory; Device models cudaMalloc (reachable by the NIC only via
/// GPUDirect/CUDA-Aware MPI); Unified models UM/ATS memory (reachable from
/// both sides, with page-fault migration charged by the gpusim touch hooks).
enum class MemSpace : std::uint8_t { Host, Device, Unified };

/// One directional link: alpha-beta cost `alpha + bytes/bw`.
struct LinkParams {
  double alpha = 1.5e-6;  ///< per-message latency, seconds
  double bw = 8.0e9;      ///< bandwidth, bytes/second
};

/// Cost constants for the virtual-clock communication model. The defaults
/// approximate a Cray Aries-class fabric; src/model provides calibrated
/// Theta and Summit instances.
///
/// Timing rules (see DESIGN.md §5.4):
///  * Isend advances the sender clock by `send_overhead` (+ datatype pack
///    cost if a derived datatype is used), then serializes the message on
///    the sender NIC: departure = max(clock, nic_free); nic_free =
///    departure + bytes/bw. Arrival at the receiver = nic_free + alpha.
///  * Wait on a receive advances the receiver clock to max(clock, arrival)
///    (+ datatype unpack cost).
///  * Barrier is a max-reduction plus `barrier_alpha * ceil(log2 P)`.
struct NetModel {
  double send_overhead = 0.5e-6;  ///< CPU time to post a send
  double recv_overhead = 0.2e-6;  ///< CPU time to post/complete a receive
  /// CPU time to mark one partition of a partitioned send ready
  /// (Partitioned::pready). Only the partitioned path reads it, so bulk
  /// traffic — and every default-overlap golden — is unaffected.
  double pready_overhead = 1.0e-7;

  LinkParams inter_node{};                  ///< network fabric
  LinkParams intra_node{0.6e-6, 5.0e10};    ///< same-node ranks (shmem/NVLink)

  /// Derived-datatype processing: per contiguous block touched (both sides)
  /// and the internal pack/unpack copy bandwidth. These are what make
  /// MPI_Types collapse for many tiny strided blocks, as in the paper.
  double dt_block_overhead = 2.5e-7;  ///< seconds per block, each side
  double dt_copy_bw = 5.0e9;          ///< bytes/second internal copy

  double barrier_alpha = 2.0e-6;  ///< per log2(P) stage

  /// Exchange-plan construction ("setup") costs, charged by the plan layer
  /// (core/exchange_plan.h) once per plan build — once per configuration in
  /// build-once mode, once per round when replanning is forced. Persistent
  /// request init itself charges nothing; these model the schedule work an
  /// MPI code amortizes with MPI_Send_init/MPI_Recv_init: region-list
  /// scans, per-message argument marshalling, MPI_Type_commit, and mmap
  /// view-span resolution.
  double plan_region_overhead = 2.0e-8;   ///< per surface region scanned
  double plan_msg_overhead = 1.0e-7;      ///< per message initialized
  double dt_commit_overhead = 5.0e-8;     ///< per datatype block committed
  double mmap_segment_overhead = 2.5e-7;  ///< per mmap view segment resolved

  /// Transport-tier costs (DESIGN.md §13), used only when the runtime's
  /// transport is Shm or ShmAgg. The on-node path replaces the fabric send
  /// for same-node pairs: a contiguous payload is a pointer handoff
  /// (latency only — the zero-copy win layout buys), a strided one adds a
  /// single copy through a mapped view. Aggregation frames charge per-sub
  /// table bookkeeping on the sealing side and the same view-copy rate for
  /// receiver-side unpacking.
  double shm_handoff_alpha = 2.0e-7;  ///< same-node pointer-handoff latency
  double shm_view_bw = 4.0e10;        ///< mapped-view copy, bytes/second
  double agg_sub_overhead = 1.5e-7;   ///< per sub-message pack/unpack entry
  std::int64_t agg_header_bytes = 64;      ///< frame header on the wire
  std::int64_t agg_sub_header_bytes = 32;  ///< per-sub table entry on the wire

  /// How many consecutive ranks share a node (V2 uses 6 GPUs/ranks a node).
  int ranks_per_node = 1;

  /// Memory-space adjustments, applied on top of the link cost when either
  /// endpoint buffer is not plain host memory.
  double device_alpha_extra = 0.4e-6;  ///< GPUDirect RDMA setup per message
  double device_bw_factor = 1.0;       ///< relative link bandwidth from HBM
  double um_alpha_extra = 3.0e-6;      ///< UM fault/pinning per message
  double um_bw_factor = 0.8;           ///< UM streams slower through the NIC

  [[nodiscard]] int node_of(int rank) const { return rank / ranks_per_node; }

  /// Memory-space adjustments applied to a base link (sender side first,
  /// then receiver side — the order is part of the timing contract).
  [[nodiscard]] LinkParams adjust(LinkParams lp, MemSpace s, MemSpace d) const {
    auto apply = [&lp](MemSpace m, double a_dev, double f_dev, double a_um,
                       double f_um) {
      if (m == MemSpace::Device) {
        lp.alpha += a_dev;
        lp.bw *= f_dev;
      } else if (m == MemSpace::Unified) {
        lp.alpha += a_um;
        lp.bw *= f_um;
      }
    };
    apply(s, device_alpha_extra, device_bw_factor, um_alpha_extra,
          um_bw_factor);
    apply(d, device_alpha_extra, device_bw_factor, um_alpha_extra,
          um_bw_factor);
    return lp;
  }

  /// Effective link for a message between `src` and `dst` ranks whose
  /// buffers live in `s` (sender side) and `d` (receiver side).
  [[nodiscard]] LinkParams link(int src, int dst, MemSpace s,
                                MemSpace d) const {
    return adjust(node_of(src) == node_of(dst) ? intra_node : inter_node, s,
                  d);
  }
};

}  // namespace brickx::mpi
