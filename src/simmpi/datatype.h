#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/vec.h"

namespace brickx::mpi {

/// A flattened derived datatype: the list of (byte offset, byte length)
/// contiguous blocks it touches relative to the buffer base, in canonical
/// (send) order. This is the "type map" an MPI implementation internally
/// walks when packing a non-contiguous send.
struct FlatType {
  struct Block {
    std::size_t offset;
    std::size_t length;
  };
  std::vector<Block> blocks;
  std::size_t total_bytes = 0;

  /// Gather the described bytes from `base` into `out` (internal packing).
  void gather(const std::byte* base, std::byte* out) const;
  /// Scatter `in` back into `base` (internal unpacking).
  void scatter(const std::byte* in, std::byte* base) const;
};

/// Derived datatype constructors mirroring the MPI calls the paper's
/// MPI_Types baseline uses. All sizes are in bytes via `elem_size`.
class Datatype {
 public:
  /// An empty (zero-byte) datatype; assign a real one before use.
  Datatype() : flat_(std::make_shared<FlatType>()) {}

  /// `count` contiguous elements.
  static Datatype contiguous(std::size_t count, std::size_t elem_size);

  /// MPI_Type_vector: `count` blocks of `blocklen` elements, consecutive
  /// block starts `stride` elements apart.
  static Datatype vector(std::size_t count, std::size_t blocklen,
                         std::size_t stride, std::size_t elem_size);

  /// MPI_Type_create_subarray (order = C with axis 0 fastest, matching
  /// brickx::Vec conventions): the sub-box `sub` at `start` of an array
  /// with extents `sizes`.
  template <int D>
  static Datatype subarray(const Vec<D>& sizes, const Vec<D>& sub,
                           const Vec<D>& start, std::size_t elem_size);

  /// Concatenate several datatypes (MPI_Type_create_struct with byte
  /// displacements): each element of `parts` is (displacement, type).
  static Datatype concat(
      const std::vector<std::pair<std::size_t, Datatype>>& parts);

  /// The flattened block list (computed at construction, i.e. "committed").
  [[nodiscard]] const FlatType& flat() const { return *flat_; }

  /// Shared ownership of the flattened form; pending receives hold this so
  /// the datatype may be destroyed before the request completes.
  [[nodiscard]] std::shared_ptr<const FlatType> flat_ptr() const {
    return flat_;
  }

  [[nodiscard]] std::size_t size() const { return flat_->total_bytes; }
  [[nodiscard]] std::size_t block_count() const {
    return flat_->blocks.size();
  }

  /// Maximum offset+length touched; buffers must be at least this large.
  [[nodiscard]] std::size_t extent() const;

 private:
  std::shared_ptr<FlatType> flat_;  // immutable after construction
};

}  // namespace brickx::mpi
