#pragma once

#include <vector>

#include "common/bitset.h"
#include "common/vec.h"
#include "simmpi/comm.h"

namespace brickx::mpi {

/// Factor `nranks` into a D-dimensional grid as evenly as possible
/// (MPI_Dims_create equivalent; dims sorted decreasing like MPICH, then
/// reversed so axis 0 — the contiguous data axis — gets the largest factor).
template <int D>
Vec<D> dims_create(int nranks);

/// A periodic Cartesian process grid laid over an existing communicator
/// (MPI_Cart_create equivalent, always fully periodic as in the paper's
/// experiments). Rank r has coordinates delinearize(r, dims).
template <int D>
class Cart {
 public:
  Cart(Comm& comm, const Vec<D>& dims);

  [[nodiscard]] const Vec<D>& dims() const { return dims_; }
  [[nodiscard]] Vec<D> coords() const { return coords_; }
  [[nodiscard]] Comm& comm() const { return *comm_; }

  /// Rank at coordinates `c` (periodic wrap applied).
  [[nodiscard]] int rank_of(Vec<D> c) const {
    for (int i = 0; i < D; ++i)
      c[i] = ((c[i] % dims_[i]) + dims_[i]) % dims_[i];
    return static_cast<int>(linearize(c, dims_));
  }

  /// Rank of the neighbor in direction set `dir` (e.g. {1,-2} = +1 along
  /// axis 1, -1 along axis 2, axes 1-based as in the paper's notation).
  [[nodiscard]] int neighbor(const BitSet& dir) const {
    Vec<D> c = coords_;
    for (int a = 1; a <= D; ++a) c[a - 1] += dir.dir_of(a);
    return rank_of(c);
  }

  /// All 3^D - 1 neighbor direction sets in a fixed enumeration order.
  [[nodiscard]] static std::vector<BitSet> all_directions();

 private:
  Comm* comm_;
  Vec<D> dims_;
  Vec<D> coords_;
};

}  // namespace brickx::mpi
