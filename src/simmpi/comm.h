#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <utility>
#include <vector>

#include "common/error.h"
#include "obs/obs.h"
#include "simmpi/datatype.h"
#include "simmpi/fault.h"
#include "simmpi/netmodel.h"
#include "transport/transport.h"

namespace brickx::obs {
class Collector;
}  // namespace brickx::obs

namespace brickx::netsim {
class Fabric;
}  // namespace brickx::netsim

namespace brickx::mpi {

class Runtime;
class Comm;

/// Secondary failure: this rank was torn down because *another* rank threw
/// first. Runtime::run rethrows a primary (non-Aborted) error when one
/// exists, so the original diagnosis is never masked by teardown noise.
class AbortedError : public brickx::Error {
 public:
  using brickx::Error::Error;
};

/// Per-rank virtual clock, in seconds. Compute and communication both
/// advance it; the harness reads phase deltas from it. Wall time never
/// enters, so runs are deterministic.
class VClock {
 public:
  [[nodiscard]] double now() const { return t_; }
  void advance(double dt) { t_ += dt; }
  void advance_to(double t) {
    if (t > t_) t_ = t;
  }
  /// Stable pointer to the current time, for the obs ambient binding (the
  /// tracer reads it on every span open/close without a VClock dependency).
  [[nodiscard]] const double* time_ptr() const { return &t_; }

 private:
  double t_ = 0.0;
};

/// Handle for a pending nonblocking operation. Obtained from Comm::isend /
/// Comm::irecv; completed by Comm::wait / Comm::waitall. Movable,
/// single-use.
class Request {
 public:
  Request() = default;
  [[nodiscard]] bool valid() const { return state_ != nullptr; }

 private:
  friend class Comm;
  friend class Persistent;
  struct State;
  std::shared_ptr<State> state_;
};

/// Lifecycle misuse of a persistent request (start before init, double
/// start, wait without start, free while in flight). Typed so tests can
/// assert the failure mode instead of tripping UB.
class PersistentError : public brickx::Error {
 public:
  using brickx::Error::Error;
};

/// MPI_Send_init/MPI_Recv_init-style persistent request: the message
/// parameters (buffer, size/datatype, peer, tag) are frozen once by
/// Comm::send_init / Comm::recv_init, then each round is just
/// start() + wait() — the schedule-building work (argument validation,
/// datatype flattening) never recurs. start() funnels into the exact same
/// send/receive paths as the ad-hoc isend/irecv, so a replayed round is
/// bit-identical in virtual time, counters and bytes to an ad-hoc one.
///
/// Handles are movable and shareable (shared_ptr semantics); destruction
/// while a round is in flight is safe (the pending operation is abandoned,
/// matching a run torn down by an aborting rank), but free() on an active
/// handle is a typed error, mirroring MPI_Request_free restrictions.
class Persistent {
 public:
  Persistent() = default;

  /// Initialized by send_init/recv_init (may still be inactive).
  [[nodiscard]] bool valid() const { return state_ != nullptr; }
  /// A round is in flight: started but not yet waited.
  [[nodiscard]] bool active() const;

  /// Begin one round. PersistentError if uninitialized or already active.
  void start();
  /// Complete the round begun by start(). PersistentError if uninitialized
  /// or no round is active.
  void wait();
  /// Release the frozen parameters. No-op on an empty handle;
  /// PersistentError while a round is in flight (wait() first).
  void free();

 private:
  friend class Comm;
  struct State;
  std::shared_ptr<State> state_;
};

/// Lifecycle misuse of a partitioned request (pready before start, double
/// pready, wait with unready partitions, free while in flight, side/index
/// confusion). Typed so tests can assert the failure mode, mirroring
/// PersistentError.
class PartitionedError : public brickx::Error {
 public:
  using brickx::Error::Error;
};

/// MPI_Psend_init/MPI_Precv_init-style partitioned persistent request
/// (MPI 4.0 §4.2): one logical message whose payload is split into
/// contiguous partitions that become ready (send side) or are consumed
/// (receive side) independently. The wire schedule is frozen once by
/// Comm::psend_init / Comm::precv_init; each round is
/// start() → pready(i)/arrived(i) per partition → wait().
///
/// Each pready(i) injects that partition into the fabric immediately, so
/// boundary data computed early starts flowing while the rest of the
/// message is still being produced; each arrived(i) consumes exactly that
/// partition as soon as it lands, advancing the virtual clock only as far
/// as that partition's arrival. The round still counts as ONE logical
/// message in CommCounters (the partitioning changes when bytes move, not
/// how many messages the application posts), keeping counter invariants
/// identical to the bulk path.
///
/// Handles are movable and shareable (shared_ptr semantics); destruction
/// while a round is in flight abandons it safely, but free() on an active
/// handle is a typed error, mirroring Persistent.
class Partitioned {
 public:
  Partitioned() = default;

  /// Initialized by psend_init/precv_init (may still be inactive).
  [[nodiscard]] bool valid() const { return state_ != nullptr; }
  /// A round is in flight: started but not yet waited.
  [[nodiscard]] bool active() const;
  /// Number of partitions frozen at init (0 on an empty handle).
  [[nodiscard]] int partitions() const;

  /// Begin one round. Charges the per-message posting overhead; no bytes
  /// move until partitions are readied. PartitionedError if uninitialized
  /// or already active.
  void start();
  /// Send side: partition i's source data is complete — copy it out and
  /// inject it. PartitionedError if uninitialized, inactive, on a receive
  /// request, out of range, or already readied this round.
  void pready(int i);
  /// Receive side: consume partition i, blocking (in wall time) until the
  /// sender has delivered it, then advance this rank's virtual clock no
  /// further than that partition's arrival. Returns true when the data had
  /// already arrived (the wait was fully hidden), false when the clock had
  /// to advance. PartitionedError if uninitialized, inactive, on a send
  /// request, out of range, or already consumed this round.
  bool arrived(int i);
  /// Complete the round. Send side: every partition must have been readied
  /// (typed error otherwise); advances to the last injection's completion.
  /// Receive side: consumes any partitions arrived(i) has not, in index
  /// order. PartitionedError if uninitialized or no round is active.
  void wait();
  /// Release the frozen parameters. No-op on an empty handle;
  /// PartitionedError while a round is in flight (wait() first).
  void free();

 private:
  friend class Comm;
  struct State;
  bool consume(int i);  ///< shared arrived()/wait() per-partition path
  std::shared_ptr<State> state_;
};

/// Communication statistics counted per rank; benches use them to report
/// message counts, byte volumes and pack traffic (Table 2, Figs. 4/18).
struct CommCounters {
  std::int64_t msgs_sent = 0;
  std::int64_t bytes_sent = 0;
  std::int64_t msgs_recv = 0;
  std::int64_t bytes_recv = 0;
  std::int64_t dt_blocks = 0;      ///< datatype blocks processed (both sides)
  std::int64_t dt_pack_bytes = 0;  ///< bytes internally packed by datatypes
  /// High-water mark of simultaneously pending Requests (posted, not yet
  /// waited) — how deep this rank keeps the NIC pipeline.
  std::int64_t max_inflight_reqs = 0;
  /// Send-side split by locality under the fabric's rank-to-node mapping
  /// (msgs_intra + msgs_inter == msgs_sent). Counted on every transport;
  /// table1 emits the split columns whenever ranks share nodes.
  std::int64_t msgs_intra = 0;   ///< sent to a same-node peer
  std::int64_t bytes_intra = 0;
  std::int64_t msgs_inter = 0;   ///< sent to a peer on another node
  std::int64_t bytes_inter = 0;
  void reset() { *this = CommCounters{}; }
};

/// One in-flight message as the runtime's mailboxes carry it. The
/// integrity fields (seq / checksum / sent_bytes / dropped) are stamped and
/// verified only while a FaultInjector is installed on the Runtime; they
/// are inert otherwise.
struct Envelope {
  int src = 0;
  int tag = 0;
  std::vector<std::byte> data;
  double arrival = 0.0;  ///< receiver-visible virtual arrival time
  std::uint64_t seq = 0;        ///< per (src, dst, tag) send ordinal, from 1
  std::uint64_t checksum = 0;   ///< FNV-1a of the payload as sent
  std::size_t sent_bytes = 0;   ///< payload size before any truncation
  bool dropped = false;         ///< payload lost in transit (fault)
  // Causal metadata for the critical-path analyzer (obs/analyze.h): the
  // sender-side timeline rides with the message so the receiver can record
  // a self-contained obs::RecvEvent — no cross-rank pairing needed, which
  // keeps the analysis robust under reorder/duplicate faults. Inert cost
  // otherwise (POD stamps, no clock effect).
  double post = 0.0;            ///< sender clock when the send was posted
  double inject_start = 0.0;    ///< first byte entered the sender NIC
  double inject_end = 0.0;      ///< sender NIC finished injecting
  double inject_nominal = 0.0;  ///< bytes / endpoint bw (uncontended)
  double fault_delay = 0.0;     ///< injected Delay seconds inside `arrival`
  double sharing = 1.0;         ///< peak link-sharing factor on the route
  bool onnode = false;          ///< took the on-node shared-memory tier
  /// Receiver-side aggregation unpack seconds inside `arrival` (0 unless
  /// the message rode in a node-leader frame).
  double agg_unpack = 0.0;
  /// Partition index when this envelope carries one partition of a
  /// partitioned request (Comm::psend_init); -1 for whole-message traffic.
  /// Matching requires equality, so bulk receives never consume partition
  /// envelopes and vice versa even on a shared (src, tag).
  int part = -1;
};

/// An MPI_Comm-like communicator bound to the calling rank. Each rank
/// thread receives its own Comm& from Runtime::run and must not share it
/// with other threads.
class Comm {
 public:
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return size_; }

  /// --- point to point (eager; buffer is reusable on return) -------------

  Request isend(const void* buf, std::size_t bytes, int dest, int tag);
  Request irecv(void* buf, std::size_t bytes, int src, int tag);

  /// Derived-datatype variants: the datatype engine really gathers/
  /// scatters, and the virtual clock is charged per-block overhead + copy
  /// time — the cost profile of MPI_Types the paper measures.
  Request isend(const void* buf, const Datatype& type, int dest, int tag);
  Request irecv(void* buf, const Datatype& type, int src, int tag);

  void wait(Request& req);
  void waitall(std::vector<Request>& reqs);

  /// --- persistent requests (build once, replay per round) ----------------
  ///
  /// Freeze the message parameters now; replay with Persistent::start /
  /// Persistent::wait each round. Initialization validates arguments but
  /// charges nothing to the virtual clock — all modeled cost stays on the
  /// start/wait path, which is shared verbatim with isend/irecv.

  [[nodiscard]] Persistent send_init(const void* buf, std::size_t bytes,
                                     int dest, int tag);
  [[nodiscard]] Persistent recv_init(void* buf, std::size_t bytes, int src,
                                     int tag);
  [[nodiscard]] Persistent send_init(const void* buf, const Datatype& type,
                                     int dest, int tag);
  [[nodiscard]] Persistent recv_init(void* buf, const Datatype& type, int src,
                                     int tag);

  /// --- partitioned persistent requests (MPI_Psend_init-style) -------------
  ///
  /// Freeze a contiguous message split into partitions given by
  /// `part_bytes` (each > 0, summing to `bytes`); replay rounds with
  /// Partitioned::start / pready / arrived / wait. The convenience
  /// overloads split `bytes` into `nparts` equal partitions (typed error
  /// unless nparts divides bytes evenly). Init charges nothing.

  [[nodiscard]] Partitioned psend_init(const void* buf, std::size_t bytes,
                                       int dest, int tag,
                                       std::vector<std::size_t> part_bytes);
  [[nodiscard]] Partitioned precv_init(void* buf, std::size_t bytes, int src,
                                       int tag,
                                       std::vector<std::size_t> part_bytes);
  [[nodiscard]] Partitioned psend_init(const void* buf, std::size_t bytes,
                                       int dest, int tag, int nparts);
  [[nodiscard]] Partitioned precv_init(void* buf, std::size_t bytes, int src,
                                       int tag, int nparts);

  /// Blocking convenience wrappers.
  void send(const void* buf, std::size_t bytes, int dest, int tag);
  void recv(void* buf, std::size_t bytes, int src, int tag);

  /// --- collectives -------------------------------------------------------

  void barrier();
  [[nodiscard]] double allreduce_max(double v);
  [[nodiscard]] double allreduce_sum(double v);
  [[nodiscard]] std::int64_t allreduce_sum(std::int64_t v);
  /// Gather one double per rank; result valid on every rank.
  [[nodiscard]] std::vector<double> allgather(double v);

  /// --- clock & accounting -------------------------------------------------

  [[nodiscard]] VClock& clock() { return clock_; }
  [[nodiscard]] const NetModel& net() const;
  [[nodiscard]] CommCounters& counters() { return counters_; }

  /// Advance this rank's clock by modeled compute seconds.
  void compute(double seconds) { clock_.advance(seconds); }

 private:
  friend class Runtime;
  friend class Persistent;
  friend class Partitioned;
  Comm(Runtime* rt, int rank, int size) : rt_(rt), rank_(rank), size_(size) {}

  Request isend_impl(const void* buf, std::size_t bytes,
                     std::shared_ptr<const FlatType> flat, int dest, int tag);
  Request irecv_impl(void* buf, std::size_t bytes,
                     std::shared_ptr<const FlatType> flat, int src, int tag);
  Persistent init_impl(bool is_send, const void* buf, std::size_t bytes,
                       std::shared_ptr<const FlatType> flat, int peer,
                       int tag);
  Partitioned pinit_impl(bool is_send, const void* buf, std::size_t bytes,
                         int peer, int tag,
                         std::vector<std::size_t> part_bytes);

  // Fault-injection support (all no-ops unless the Runtime has an injector
  // installed; see simmpi/fault.h). The sequence maps are per-edge message
  // ordinals of the integrity layer — partitioned traffic keeps a separate
  // per-(peer, tag, partition) stream so faults land on individual
  // partitions; held_ parks envelopes a Reorder fault displaced until the
  // next send to the same peer (or the next wait / collective — flush
  // points that keep the simulation deadlock-free).
  void flush_held();
  void flush_held_to(int dest);
  void verify_envelope(const Envelope& env, std::size_t want_bytes, int src,
                       int tag, std::uint64_t& last);

  Runtime* rt_;
  int rank_;
  int size_;
  VClock clock_;
  CommCounters counters_;
  int inflight_ = 0;  ///< currently pending Requests (send + recv)
  std::map<std::pair<int, int>, std::uint64_t> send_seq_;  ///< (dest, tag)
  std::map<std::pair<int, int>, std::uint64_t> recv_seq_;  ///< (src, tag)
  /// Partition-stream ordinals: (peer, tag, partition) — one integrity
  /// stream per partition so reorder/delay faults on one partition cannot
  /// trip the sequence check of another.
  std::map<std::tuple<int, int, int>, std::uint64_t> psend_seq_;
  std::map<std::tuple<int, int, int>, std::uint64_t> precv_seq_;
  std::vector<std::pair<int, Envelope>> held_;  ///< (dest, reordered env)
};

/// Hooks the GPU simulator installs so message buffers in device/unified
/// memory are classified and page migrations are charged (DESIGN.md §2).
struct MemHooks {
  /// Classify a pointer (default: everything is Host).
  std::function<MemSpace(const void*)> classify;
  /// Called when rank-side CPU/NIC code touches [p, p+bytes); returns extra
  /// seconds to charge to that rank's clock (e.g. UM fault migration).
  std::function<double(int rank, const void* p, std::size_t bytes, bool write)>
      touch;
};

/// One recorded point-to-point message (legacy view of the obs flow trace;
/// see Runtime::enable_trace). Times are virtual seconds.
struct MsgEvent {
  int src;
  int dst;
  int tag;
  std::size_t bytes;
  double departure;  ///< sender NIC finished injecting
  double arrival;    ///< receiver-visible arrival of the last byte
};

/// Owns the rank threads, mailboxes and shared model. One Runtime per
/// simulated job.
class Runtime {
 public:
  /// `model`: cost constants; `nranks`: world size.
  Runtime(int nranks, NetModel model);
  ~Runtime();
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Execute `body(comm)` once on every rank (threads are spawned and
  /// joined inside). Exceptions from any rank are rethrown on the caller
  /// after all ranks finish or abort.
  void run(const std::function<void(Comm&)>& body);

  [[nodiscard]] const NetModel& net() const { return model_; }
  [[nodiscard]] int size() const { return nranks_; }

  void set_mem_hooks(MemHooks hooks) { hooks_ = std::move(hooks); }

  /// Replace the fabric that times message departure/arrival. The default
  /// is the flat model (netsim::FlatFabric), bit-identical to the original
  /// per-sender NIC serialization; install a contention fabric to route
  /// messages over a topology. Must not be called while run() is active;
  /// the fabric must cover `size()` ranks.
  void set_fabric(std::unique_ptr<netsim::Fabric> fabric);
  [[nodiscard]] netsim::Fabric& fabric() const { return *fabric_; }

  /// Select the on-node transport tier (DESIGN.md §13). Flat (the default)
  /// keeps every message on the fabric send path, byte-identical to the
  /// pre-transport behavior. Shm short-circuits same-node pairs through
  /// the shared-memory model; ShmAgg additionally coalesces co-located
  /// ranks' inter-node sends into one framed fabric flow per (node,
  /// neighbor-node) pair. Must not be called while run() is active.
  void set_transport(transport::Kind k) { transport_ = k; }
  [[nodiscard]] transport::Kind transport_kind() const { return transport_; }
  /// Transport-tier traffic of the most recent run() (all zeros under
  /// Flat).
  [[nodiscard]] transport::Stats transport_stats() const;

  /// Install an obs Collector: every rank thread of subsequent run() calls
  /// is bound to its RankLog, so comm/datatype/gpusim instrumentation lands
  /// there. Pass nullptr to detach (recording is then zero-cost again). The
  /// Collector must outlive the runs it observes; the caller keeps ownership.
  void set_collector(obs::Collector* c) { collector_ = c; }
  [[nodiscard]] obs::Collector* collector() const { return collector_; }

  /// Install a deterministic message-fault injector (simmpi/fault.h):
  /// envelopes gain sequence numbers and payload checksums, receives verify
  /// them, and the injector's seeded schedule perturbs messages in flight.
  /// Pass nullptr to detach (the default: zero overhead, byte-identical
  /// behavior to pre-fault builds). The injector must outlive the runs it
  /// covers; the caller keeps ownership and reads counts() afterwards.
  void set_fault_injector(FaultInjector* fi) { fault_ = fi; }
  [[nodiscard]] FaultInjector* fault_injector() const { return fault_; }

  /// Legacy trace API, now a shim over the obs flow log: enables an
  /// internally owned Collector. Off by default.
  void enable_trace(bool on = true);
  /// Recorded messages in sender-departure order (stable across runs —
  /// the virtual clock is deterministic).
  [[nodiscard]] std::vector<MsgEvent> trace() const;
  void clear_trace();

  /// Per-rank results collected after run(): final virtual time and
  /// counters of rank r.
  [[nodiscard]] double final_vtime(int rank) const;
  [[nodiscard]] const CommCounters& final_counters(int rank) const;

 private:
  friend class Comm;
  friend class Partitioned;

  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Envelope> queue;
  };

  void deliver(int dest, Envelope env);
  Envelope match(int self, int src, int tag, int part = -1);

  // Transport tier internals (comm.cc). AggState owns the node-leader
  // aggregator; it is rebuilt at the start of every ShmAgg run so aborted
  // runs cannot leak staged sub-messages.
  struct AggState;
  struct AggSub;
  void transport_run_begin();
  void stage_agg(int src_rank, int dest, Envelope env, bool defer);
  /// Rank reached a commit point (wait or collective entry): advance its
  /// aggregation generation, then drain any sub-flow records frames sealed
  /// on other threads left for this rank's log.
  void transport_commit(int rank);
  void transport_finalize(int rank);
  void seal_frame(int src_node, int dst_node, std::vector<AggSub>&& subs);
  void note_onnode(std::size_t bytes, bool view_copy);
  void drain_pending_flows(int rank);

  MemSpace classify(const void* p) const {
    return hooks_.classify ? hooks_.classify(p) : MemSpace::Host;
  }
  double touch(int rank, const void* p, std::size_t bytes, bool write) const {
    return hooks_.touch ? hooks_.touch(rank, p, bytes, write) : 0.0;
  }

  int nranks_;
  NetModel model_;
  MemHooks hooks_;
  std::unique_ptr<netsim::Fabric> fabric_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;

  // Collective scratch (barrier generation protocol in comm.cc).
  std::mutex coll_mu_;
  std::condition_variable coll_cv_;
  std::int64_t coll_generation_ = 0;
  int coll_arrived_ = 0;
  std::vector<double> coll_slots_;
  std::vector<double> coll_snapshot_;

  std::vector<double> final_vtimes_;
  std::vector<CommCounters> final_counters_;

  obs::Collector* collector_ = nullptr;
  std::unique_ptr<obs::Collector> owned_trace_;  ///< backs enable_trace()
  FaultInjector* fault_ = nullptr;

  transport::Kind transport_ = transport::Kind::Flat;
  std::unique_ptr<AggState> agg_;  ///< live only during a ShmAgg run
  mutable std::mutex tstats_mu_;
  transport::Stats tstats_;
  /// Sub-message flow records sealed on another member's thread, parked
  /// here until the owning rank (or the post-join sweep) appends them to
  /// its single-writer RankLog.
  std::mutex pf_mu_;
  std::vector<std::vector<obs::FlowEvent>> pending_flows_;
};

}  // namespace brickx::mpi
