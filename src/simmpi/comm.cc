#include "simmpi/comm.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <exception>
#include <optional>
#include <thread>

#include "common/error.h"
#include "netsim/fabric.h"
#include "obs/obs.h"
#include "transport/aggregate.h"

namespace brickx::mpi {

namespace {
// Job-wide abort flag: when one rank throws, waiting ranks must not block
// forever on matches that will never arrive.
std::atomic<bool> g_abort{false};
}  // namespace

struct Request::State {
  enum class Kind { Send, Recv } kind;
  // Send: virtual time at which the local NIC has injected the message.
  double send_complete = 0.0;
  // Recv: posted parameters; matching happens in wait().
  void* buf = nullptr;
  std::size_t bytes = 0;
  std::shared_ptr<const FlatType> flat;  // null => contiguous receive
  int peer = -1;
  int tag = 0;
  bool done = false;
};

const NetModel& Comm::net() const { return rt_->model_; }

Request Comm::isend(const void* buf, std::size_t bytes, int dest, int tag) {
  return isend_impl(buf, bytes, nullptr, dest, tag);
}

Request Comm::isend(const void* buf, const Datatype& type, int dest,
                    int tag) {
  return isend_impl(buf, type.size(), type.flat_ptr(), dest, tag);
}

Request Comm::irecv(void* buf, std::size_t bytes, int src, int tag) {
  return irecv_impl(buf, bytes, nullptr, src, tag);
}

Request Comm::irecv(void* buf, const Datatype& type, int src, int tag) {
  return irecv_impl(buf, type.size(), type.flat_ptr(), src, tag);
}

Request Comm::isend_impl(const void* buf, std::size_t bytes,
                         std::shared_ptr<const FlatType> flat, int dest,
                         int tag) {
  BX_CHECK(dest >= 0 && dest < size_, "isend: bad destination rank");
  obs::ObsSpan op_span(obs::Cat::Call, "mpi_isend");
  const NetModel& m = rt_->model_;
  clock_.advance(m.send_overhead);

  Envelope env;
  env.src = rank_;
  env.tag = tag;
  env.data.resize(bytes);
  if (flat != nullptr) {
    // The datatype engine packs internally: real copies, and the virtual
    // clock is charged per block plus copy bandwidth — the MPI_Types cost
    // profile the paper measures.
    obs::ObsSpan dt_span(obs::Cat::DtPack, "dt_gather");
    const FlatType& ft = *flat;
    ft.gather(static_cast<const std::byte*>(buf), env.data.data());
    clock_.advance(static_cast<double>(ft.blocks.size()) *
                       m.dt_block_overhead +
                   static_cast<double>(bytes) / m.dt_copy_bw);
    counters_.dt_blocks += static_cast<std::int64_t>(ft.blocks.size());
    counters_.dt_pack_bytes += static_cast<std::int64_t>(bytes);
  } else if (bytes > 0) {
    std::memcpy(env.data.data(), buf, bytes);
  }
  // Unified-memory buffers may need page migration to be readable by the
  // NIC/host; the gpusim hook charges it. Datatype sends touch each
  // contiguous block at its real offset (not the packed size).
  if (flat != nullptr) {
    for (const auto& blk : flat->blocks)
      clock_.advance(rt_->touch(rank_,
                                static_cast<const std::byte*>(buf) + blk.offset,
                                blk.length, /*write=*/false));
  } else {
    clock_.advance(rt_->touch(rank_, buf, bytes, /*write=*/false));
  }

  // Hand the message to the transport tier. Flat (the default) gives every
  // message to the fabric for departure/arrival timing — with the default
  // flat fabric this is bit-identical to the original sender-NIC
  // serialization. Shm short-circuits same-node pairs: the fabric (and
  // this rank's NIC horizon) never sees them, delivery is one on-node
  // handoff away. ShmAgg additionally stages inter-node sends into the
  // node leader's frame buffer; their departure/arrival are stamped when
  // the frame seals (Runtime::seal_frame). The receiver-side memory space
  // adds its latency at wait(); bandwidth is modeled once, here (our
  // experiments use symmetric spaces on both endpoints).
  const MemSpace sspace = rt_->classify(buf);
  netsim::Fabric& fab = *rt_->fabric_;
  const bool local = fab.local(rank_, dest);
  const LinkParams lp =
      m.adjust(local ? m.intra_node : m.inter_node, sspace, MemSpace::Host);
  const transport::Kind tk = rt_->transport_;
  const bool shm_path = tk != transport::Kind::Flat && local;
  const bool agg_path = tk == transport::Kind::ShmAgg && !local;

  if (shm_path && flat != nullptr) {
    // Strided payload on the on-node tier: publish the packed image with
    // one copy through a node-shared mapped view. Contiguous payloads are
    // pointer handoffs and pay latency only — the zero-copy win a
    // contiguity-preserving layout buys.
    const double copy = static_cast<double>(bytes) / m.shm_view_bw;
    obs::note_cost(obs::Cat::OnNode, "shm_view_copy", copy);
    clock_.advance(copy);
  } else if (agg_path) {
    const double copy = static_cast<double>(bytes) / m.shm_view_bw;
    obs::note_cost(obs::Cat::OnNode, "agg_stage", copy);
    clock_.advance(copy);
  }

  const double post = clock_.now();
  if (shm_path) {
    env.arrival = post + m.shm_handoff_alpha;
    env.post = post;
    env.inject_start = post;
    env.inject_end = post;
    env.inject_nominal = 0.0;
    env.sharing = 1.0;
    env.onnode = true;
    rt_->note_onnode(bytes, flat != nullptr);
  } else if (!agg_path) {
    const netsim::SendTiming tm =
        fab.send(rank_, dest, bytes, lp.alpha, lp.bw, post);
    env.arrival = tm.arrival;
    env.post = post;
    env.inject_start = tm.inject_start;
    env.inject_end = tm.inject_end;
    env.inject_nominal = static_cast<double>(bytes) / lp.bw;
    env.sharing = tm.sharing;
  } else {
    env.post = post;
  }

  counters_.msgs_sent += 1;
  counters_.bytes_sent += static_cast<std::int64_t>(bytes);
  if (local) {
    counters_.msgs_intra += 1;
    counters_.bytes_intra += static_cast<std::int64_t>(bytes);
  } else {
    counters_.msgs_inter += 1;
    counters_.bytes_inter += static_cast<std::int64_t>(bytes);
  }
  if (!agg_path) {  // aggregated sub-flows are recorded at frame seal
    if (obs::RankLog* lg = obs::ambient_log()) {
      obs::FlowEvent fe;
      fe.src = rank_;
      fe.dst = dest;
      fe.tag = tag;
      fe.bytes = static_cast<std::uint64_t>(bytes);
      fe.depart = env.inject_end;
      fe.arrive = env.arrival;
      fe.post = post;
      fe.inject_start = env.inject_start;
      fe.inject_nominal = env.inject_nominal;
      fe.sharing = env.sharing;
      fe.onnode = env.onnode;
      lg->flow(fe);
    }
  }
  if (++inflight_ > counters_.max_inflight_reqs)
    counters_.max_inflight_reqs = inflight_;

  Request req;
  req.state_ = std::make_shared<Request::State>();
  req.state_->kind = Request::State::Kind::Send;
  req.state_->send_complete = agg_path ? post : env.inject_end;

  // Fault seam: with an injector installed, stamp the integrity header
  // (sequence + checksum of the payload as sent) and let the seeded
  // schedule perturb the envelope. None of this touches the virtual clock
  // except an injected Delay, which moves only the arrival.
  bool duplicate = false, hold = false;
  if (FaultInjector* fi = rt_->fault_) {
    env.sent_bytes = bytes;
    env.seq = ++send_seq_[{dest, tag}];
    env.checksum = checksum_bytes(env.data.data(), env.data.size());
    const FaultInjector::Decision d = fi->decide(rank_, dest, tag, bytes);
    switch (d.kind) {
      case FaultKind::None:
        break;
      case FaultKind::Delay:
        env.arrival += d.delay;
        env.fault_delay = d.delay;
        break;
      case FaultKind::Drop:
        env.dropped = true;
        env.data.clear();
        break;
      case FaultKind::Duplicate:
        duplicate = true;
        break;
      case FaultKind::Reorder:
        hold = true;
        break;
      case FaultKind::Truncate:
        env.data.resize(d.truncate_to);
        break;
      case FaultKind::Corrupt:
        env.data[d.corrupt_at] ^= std::byte{0x2a};
        break;
    }
  }
  if (agg_path) {
    // Staged toward the node leader's frame. A Reorder fault becomes a
    // deterministic displacement into the next commit generation (the
    // frame build is the wire here); everything else was already applied
    // to the sub-envelope above, so faults keep biting per sub-message.
    if (duplicate) rt_->stage_agg(rank_, dest, env, false);  // same seq
    rt_->stage_agg(rank_, dest, std::move(env), /*defer=*/hold);
  } else if (hold) {
    // Reordered: parked until the next send to this peer (below) or the
    // next wait/collective flush point. The arrival time was already
    // fixed above, so only delivery order shifts — which (src, tag)
    // matching absorbs unless two messages share an edge, where the
    // receiver's sequence check fires.
    held_.emplace_back(dest, std::move(env));
  } else {
    if (duplicate) rt_->deliver(dest, env);  // replayed copy, same seq
    rt_->deliver(dest, std::move(env));
    flush_held_to(dest);
  }
  return req;
}

void Comm::flush_held() {
  for (auto& [dest, env] : held_) rt_->deliver(dest, std::move(env));
  held_.clear();
}

void Comm::flush_held_to(int dest) {
  for (auto it = held_.begin(); it != held_.end();) {
    if (it->first == dest) {
      rt_->deliver(dest, std::move(it->second));
      it = held_.erase(it);
    } else {
      ++it;
    }
  }
}

void Comm::verify_envelope(const Envelope& env, std::size_t want_bytes,
                           int src, int tag, std::uint64_t& last) {
  auto diag = [&](const std::string& what) {
    rt_->fault_->note_detected();
    char ctx[96];
    std::snprintf(ctx, sizeof ctx, " (src=%d dst=%d tag=%d seq=%llu)", src,
                  rank_, tag, static_cast<unsigned long long>(env.seq));
    brickx::fail("fault detected: " + what + ctx);
  };
  if (env.dropped)
    diag("message dropped in transit (delivery timeout)");
  if (env.seq <= last)
    diag("duplicate or replayed message (sequence regression)");
  if (env.seq != last + 1) diag("out-of-order message (sequence gap)");
  last = env.seq;
  if (env.sent_bytes != want_bytes)
    diag("payload size mismatch against the posted receive");
  if (env.data.size() != env.sent_bytes)
    diag("truncated payload (" + std::to_string(env.data.size()) + " of " +
         std::to_string(env.sent_bytes) + " bytes arrived)");
  if (checksum_bytes(env.data.data(), env.data.size()) != env.checksum)
    diag("payload corruption (checksum mismatch)");
}

Request Comm::irecv_impl(void* buf, std::size_t bytes,
                         std::shared_ptr<const FlatType> flat, int src,
                         int tag) {
  BX_CHECK(src >= 0 && src < size_, "irecv: bad source rank");
  obs::ObsSpan op_span(obs::Cat::Call, "mpi_irecv");
  clock_.advance(rt_->model_.recv_overhead);
  if (++inflight_ > counters_.max_inflight_reqs)
    counters_.max_inflight_reqs = inflight_;
  Request req;
  req.state_ = std::make_shared<Request::State>();
  auto& st = *req.state_;
  st.kind = Request::State::Kind::Recv;
  st.buf = buf;
  st.bytes = bytes;
  st.flat = std::move(flat);
  st.peer = src;
  st.tag = tag;
  return req;
}

// ---------------------------------------------------------------------------
// Persistent requests: frozen message parameters, replayed via the same
// isend_impl/irecv_impl paths as the ad-hoc calls — the replay round is
// bit-identical in virtual time and counters by construction.
// ---------------------------------------------------------------------------

struct Persistent::State {
  Comm* comm = nullptr;
  bool is_send = false;
  const void* sbuf = nullptr;  ///< send source (is_send)
  void* rbuf = nullptr;        ///< receive destination (!is_send)
  std::size_t bytes = 0;
  std::shared_ptr<const FlatType> flat;  ///< null => contiguous
  int peer = -1;
  int tag = 0;
  Request req;  ///< the round in flight, empty between rounds
};

Persistent Comm::init_impl(bool is_send, const void* buf, std::size_t bytes,
                           std::shared_ptr<const FlatType> flat, int peer,
                           int tag) {
  // Validate now, at plan-build time; replay rounds re-check nothing. No
  // virtual-clock charge here: modeled setup cost belongs to the plan
  // layer (NetModel plan_* constants), not to request initialization.
  BX_CHECK(peer >= 0 && peer < size_,
           is_send ? "send_init: bad destination rank"
                   : "recv_init: bad source rank");
  Persistent p;
  p.state_ = std::make_shared<Persistent::State>();
  auto& st = *p.state_;
  st.comm = this;
  st.is_send = is_send;
  if (is_send)
    st.sbuf = buf;
  else
    st.rbuf = const_cast<void*>(buf);
  st.bytes = bytes;
  st.flat = std::move(flat);
  st.peer = peer;
  st.tag = tag;
  return p;
}

Persistent Comm::send_init(const void* buf, std::size_t bytes, int dest,
                           int tag) {
  return init_impl(true, buf, bytes, nullptr, dest, tag);
}

Persistent Comm::recv_init(void* buf, std::size_t bytes, int src, int tag) {
  return init_impl(false, buf, bytes, nullptr, src, tag);
}

Persistent Comm::send_init(const void* buf, const Datatype& type, int dest,
                           int tag) {
  return init_impl(true, buf, type.size(), type.flat_ptr(), dest, tag);
}

Persistent Comm::recv_init(void* buf, const Datatype& type, int src,
                           int tag) {
  return init_impl(false, buf, type.size(), type.flat_ptr(), src, tag);
}

bool Persistent::active() const {
  return state_ != nullptr && state_->req.valid();
}

void Persistent::start() {
  if (state_ == nullptr)
    throw PersistentError("start on an uninitialized persistent request");
  auto& st = *state_;
  if (st.req.valid())
    throw PersistentError(
        "start on an already-active persistent request (wait first)");
  st.req = st.is_send
               ? st.comm->isend_impl(st.sbuf, st.bytes, st.flat, st.peer,
                                     st.tag)
               : st.comm->irecv_impl(st.rbuf, st.bytes, st.flat, st.peer,
                                     st.tag);
}

void Persistent::wait() {
  if (state_ == nullptr)
    throw PersistentError("wait on an uninitialized persistent request");
  auto& st = *state_;
  if (!st.req.valid())
    throw PersistentError(
        "wait on a persistent request with no round started");
  st.comm->wait(st.req);  // resets st.req -> inactive, parameters kept
}

void Persistent::free() {
  if (state_ == nullptr) return;
  if (state_->req.valid())
    throw PersistentError(
        "free of a persistent request while a round is in flight");
  state_.reset();
}

// ---------------------------------------------------------------------------
// Partitioned persistent requests (MPI 4.0 §4.2 style). One logical message
// per round, but the payload moves partition-by-partition: pready(i) mirrors
// the isend_impl pipeline for its byte subrange (copy, touch hooks, on-node
// short circuit or per-partition fabric injection, per-partition fault
// decision), and arrived(i) mirrors the receive side of Comm::wait for one
// partition. Logical counters (msgs_sent/msgs_recv and the intra/inter
// split) are charged once per round, at start() / last consumption, so the
// counter invariants the oracle checks are identical to the bulk path on
// every transport.
// ---------------------------------------------------------------------------

struct Partitioned::State {
  Comm* comm = nullptr;
  bool is_send = false;
  const void* sbuf = nullptr;  ///< send source (is_send)
  void* rbuf = nullptr;        ///< receive destination (!is_send)
  std::size_t bytes = 0;       ///< whole-message payload
  int peer = -1;
  int tag = 0;
  std::vector<std::size_t> offs;   ///< partition byte offsets into the buffer
  std::vector<std::size_t> sizes;  ///< partition byte sizes (sum == bytes)
  bool active = false;             ///< a round is in flight
  std::vector<char> done;  ///< per-partition readied (send) / consumed (recv)
  int remaining = 0;       ///< partitions not yet readied / consumed
  /// Fabric injections this round; the first opens the wire's logical
  /// message (Fabric::send_part `first`), the rest stream behind it.
  int fabric_injected = 0;
};

Partitioned Comm::pinit_impl(bool is_send, const void* buf, std::size_t bytes,
                             int peer, int tag,
                             std::vector<std::size_t> part_bytes) {
  // Validate the whole partition table now, at plan-build time; rounds
  // re-check nothing. Like Persistent, init charges no virtual time.
  BX_CHECK(peer >= 0 && peer < size_,
           is_send ? "psend_init: bad destination rank"
                   : "precv_init: bad source rank");
  if (part_bytes.empty())
    throw PartitionedError("partitioned init with zero partitions");
  std::size_t sum = 0;
  for (std::size_t b : part_bytes) {
    if (b == 0)
      throw PartitionedError("partitioned init with an empty partition");
    sum += b;
  }
  if (sum != bytes)
    throw PartitionedError(
        "partition sizes sum to " + std::to_string(sum) + ", payload is " +
        std::to_string(bytes) + " bytes");
  Partitioned p;
  p.state_ = std::make_shared<Partitioned::State>();
  auto& st = *p.state_;
  st.comm = this;
  st.is_send = is_send;
  if (is_send)
    st.sbuf = buf;
  else
    st.rbuf = const_cast<void*>(buf);
  st.bytes = bytes;
  st.peer = peer;
  st.tag = tag;
  st.sizes = std::move(part_bytes);
  st.offs.resize(st.sizes.size());
  std::size_t off = 0;
  for (std::size_t i = 0; i < st.sizes.size(); ++i) {
    st.offs[i] = off;
    off += st.sizes[i];
  }
  st.done.assign(st.sizes.size(), 0);
  return p;
}

namespace {
std::vector<std::size_t> even_partitions(std::size_t bytes, int nparts) {
  if (nparts <= 0)
    throw PartitionedError("partitioned init with zero partitions");
  if (bytes % static_cast<std::size_t>(nparts) != 0)
    throw PartitionedError(
        std::to_string(nparts) + " partitions do not divide " +
        std::to_string(bytes) + " payload bytes evenly");
  return std::vector<std::size_t>(static_cast<std::size_t>(nparts),
                                  bytes / static_cast<std::size_t>(nparts));
}
}  // namespace

Partitioned Comm::psend_init(const void* buf, std::size_t bytes, int dest,
                             int tag, std::vector<std::size_t> part_bytes) {
  return pinit_impl(true, buf, bytes, dest, tag, std::move(part_bytes));
}

Partitioned Comm::precv_init(void* buf, std::size_t bytes, int src, int tag,
                             std::vector<std::size_t> part_bytes) {
  return pinit_impl(false, buf, bytes, src, tag, std::move(part_bytes));
}

Partitioned Comm::psend_init(const void* buf, std::size_t bytes, int dest,
                             int tag, int nparts) {
  return pinit_impl(true, buf, bytes, dest, tag,
                    even_partitions(bytes, nparts));
}

Partitioned Comm::precv_init(void* buf, std::size_t bytes, int src, int tag,
                             int nparts) {
  return pinit_impl(false, buf, bytes, src, tag,
                    even_partitions(bytes, nparts));
}

bool Partitioned::active() const {
  return state_ != nullptr && state_->active;
}

int Partitioned::partitions() const {
  return state_ == nullptr ? 0 : static_cast<int>(state_->sizes.size());
}

void Partitioned::start() {
  if (state_ == nullptr)
    throw PartitionedError("start on an uninitialized partitioned request");
  auto& st = *state_;
  if (st.active)
    throw PartitionedError(
        "start on an already-active partitioned request (wait first)");
  Comm& c = *st.comm;
  obs::ObsSpan op_span(obs::Cat::Call,
                       st.is_send ? "mpi_psend_start" : "mpi_precv_start");
  st.active = true;
  std::fill(st.done.begin(), st.done.end(), char{0});
  st.remaining = static_cast<int>(st.sizes.size());
  st.fabric_injected = 0;
  const NetModel& m = c.rt_->model_;
  if (st.is_send) {
    // Posting the round is one logical message: the per-message overhead
    // and the send-side counters land here; bytes follow via pready.
    c.clock_.advance(m.send_overhead);
    c.counters_.msgs_sent += 1;
    c.counters_.bytes_sent += static_cast<std::int64_t>(st.bytes);
    if (c.rt_->fabric_->local(c.rank_, st.peer)) {
      c.counters_.msgs_intra += 1;
      c.counters_.bytes_intra += static_cast<std::int64_t>(st.bytes);
    } else {
      c.counters_.msgs_inter += 1;
      c.counters_.bytes_inter += static_cast<std::int64_t>(st.bytes);
    }
  } else {
    c.clock_.advance(m.recv_overhead);
  }
  if (++c.inflight_ > c.counters_.max_inflight_reqs)
    c.counters_.max_inflight_reqs = c.inflight_;
}

void Partitioned::pready(int i) {
  if (state_ == nullptr)
    throw PartitionedError("pready on an uninitialized partitioned request");
  auto& st = *state_;
  if (!st.is_send)
    throw PartitionedError("pready on a receive-side partitioned request");
  if (!st.active)
    throw PartitionedError("pready before start on a partitioned request");
  if (i < 0 || i >= static_cast<int>(st.sizes.size()))
    throw PartitionedError("pready partition index out of range");
  if (st.done[static_cast<std::size_t>(i)])
    throw PartitionedError("partition readied twice in one round");
  Comm& c = *st.comm;
  Runtime* rt = c.rt_;
  obs::ObsSpan op_span(obs::Cat::Call, "mpi_pready");
  const NetModel& m = rt->model_;
  const std::size_t off = st.offs[static_cast<std::size_t>(i)];
  const std::size_t bytes = st.sizes[static_cast<std::size_t>(i)];
  const std::byte* src = static_cast<const std::byte*>(st.sbuf) + off;
  c.clock_.advance(m.pready_overhead);

  Envelope env;
  env.src = c.rank_;
  env.tag = st.tag;
  env.part = i;
  env.data.resize(bytes);
  std::memcpy(env.data.data(), src, bytes);
  c.clock_.advance(rt->touch(c.rank_, src, bytes, /*write=*/false));

  // Same transport decision tree as isend_impl, applied per partition: the
  // on-node tier hands the partition off directly; aggregation stages it as
  // its own sub-message; otherwise it is injected into the fabric the
  // moment it is readied — this is the per-partition injection timing the
  // overlap scheduler leans on.
  const MemSpace sspace = rt->classify(src);
  netsim::Fabric& fab = *rt->fabric_;
  const bool local = fab.local(c.rank_, st.peer);
  const LinkParams lp =
      m.adjust(local ? m.intra_node : m.inter_node, sspace, MemSpace::Host);
  const transport::Kind tk = rt->transport_;
  const bool shm_path = tk != transport::Kind::Flat && local;
  const bool agg_path = tk == transport::Kind::ShmAgg && !local;
  if (agg_path) {
    const double copy = static_cast<double>(bytes) / m.shm_view_bw;
    obs::note_cost(obs::Cat::OnNode, "agg_stage", copy);
    c.clock_.advance(copy);
  }

  const double post = c.clock_.now();
  if (shm_path) {
    env.arrival = post + m.shm_handoff_alpha;
    env.post = post;
    env.inject_start = post;
    env.inject_end = post;
    env.inject_nominal = 0.0;
    env.sharing = 1.0;
    env.onnode = true;
    rt->note_onnode(bytes, false);
  } else if (!agg_path) {
    // Partitions of one round share the wire's logical message: the first
    // pays the per-message fabric costs, the rest stream behind it
    // (send_part) — so overlap changes when bytes move, never what the
    // fabric carries.
    const netsim::SendTiming tm =
        fab.send_part(c.rank_, st.peer, bytes, lp.alpha, lp.bw, post,
                      st.fabric_injected++ == 0);
    env.arrival = tm.arrival;
    env.post = post;
    env.inject_start = tm.inject_start;
    env.inject_end = tm.inject_end;
    env.inject_nominal = static_cast<double>(bytes) / lp.bw;
    env.sharing = tm.sharing;
  } else {
    env.post = post;
  }
  if (!agg_path) {
    if (obs::RankLog* lg = obs::ambient_log()) {
      obs::FlowEvent fe;
      fe.src = c.rank_;
      fe.dst = st.peer;
      fe.tag = st.tag;
      fe.bytes = static_cast<std::uint64_t>(bytes);
      fe.depart = env.inject_end;
      fe.arrive = env.arrival;
      fe.post = post;
      fe.inject_start = env.inject_start;
      fe.inject_nominal = env.inject_nominal;
      fe.sharing = env.sharing;
      fe.onnode = env.onnode;
      fe.part = i;
      lg->flow(fe);
    }
  }
  // Fault seam: each partition is its own integrity stream, so the seeded
  // schedule perturbs partitions independently (a reorder/delay on one
  // leaves the others' sequence checks clean).
  bool duplicate = false, hold = false;
  if (FaultInjector* fi = rt->fault_) {
    env.sent_bytes = bytes;
    env.seq = ++c.psend_seq_[{st.peer, st.tag, i}];
    env.checksum = checksum_bytes(env.data.data(), env.data.size());
    const FaultInjector::Decision d = fi->decide(c.rank_, st.peer, st.tag,
                                                 bytes);
    switch (d.kind) {
      case FaultKind::None:
        break;
      case FaultKind::Delay:
        env.arrival += d.delay;
        env.fault_delay = d.delay;
        break;
      case FaultKind::Drop:
        env.dropped = true;
        env.data.clear();
        break;
      case FaultKind::Duplicate:
        duplicate = true;
        break;
      case FaultKind::Reorder:
        hold = true;
        break;
      case FaultKind::Truncate:
        env.data.resize(d.truncate_to);
        break;
      case FaultKind::Corrupt:
        env.data[d.corrupt_at] ^= std::byte{0x2a};
        break;
    }
  }
  if (agg_path) {
    if (duplicate) rt->stage_agg(c.rank_, st.peer, env, false);  // same seq
    rt->stage_agg(c.rank_, st.peer, std::move(env), /*defer=*/hold);
  } else if (hold) {
    c.held_.emplace_back(st.peer, std::move(env));
  } else {
    if (duplicate) rt->deliver(st.peer, env);  // replayed copy, same seq
    rt->deliver(st.peer, std::move(env));
    c.flush_held_to(st.peer);
  }
  st.done[static_cast<std::size_t>(i)] = 1;
  --st.remaining;
}

bool Partitioned::consume(int i) {
  // Shared receive-side path of arrived()/wait(): matches exactly partition
  // i's envelope (bulk traffic on the same (src, tag) can never satisfy
  // it), verifies its integrity stream, records the causal RecvEvent and
  // advances the clock no further than this partition's arrival.
  auto& st = *state_;
  Comm& c = *st.comm;
  Runtime* rt = c.rt_;
  // Flush points first (reorder-fault holds, aggregation commit): this rank
  // must not block on a peer while it still holds back traffic itself.
  if (!c.held_.empty()) c.flush_held();
  rt->transport_commit(c.rank_);
  Envelope env = rt->match(c.rank_, st.peer, st.tag, i);
  const std::size_t off = st.offs[static_cast<std::size_t>(i)];
  const std::size_t bytes = st.sizes[static_cast<std::size_t>(i)];
  if (rt->fault_ != nullptr) {
    c.verify_envelope(env, bytes, st.peer, st.tag,
                      c.precv_seq_[{st.peer, st.tag, i}]);
  } else {
    BX_CHECK(env.data.size() == bytes, "partition receive size mismatch");
  }
  std::byte* dst = static_cast<std::byte*>(st.rbuf) + off;
  const NetModel& m = rt->model_;
  const MemSpace dspace = rt->classify(dst);
  double arrival = env.arrival;
  if (dspace == MemSpace::Device) arrival += m.device_alpha_extra;
  if (dspace == MemSpace::Unified) arrival += m.um_alpha_extra;
  const double wait_start = c.clock_.now();
  if (obs::RankLog* lg = obs::ambient_log()) {
    obs::RecvEvent re;
    re.src = st.peer;
    re.tag = st.tag;
    re.bytes = static_cast<std::uint64_t>(bytes);
    re.post = env.post;
    re.inject_start = env.inject_start;
    re.depart = env.inject_end;
    re.inject_nominal = env.inject_nominal;
    re.arrive = env.arrival;
    re.fault_delay = env.fault_delay;
    re.sharing = env.sharing;
    re.wait_start = wait_start;
    re.avail = arrival;
    re.onnode = env.onnode;
    re.agg_unpack = env.agg_unpack;
    re.part = i;
    lg->recv(re);
  }
  c.clock_.advance_to(arrival);
  std::memcpy(dst, env.data.data(), bytes);
  c.clock_.advance(rt->touch(c.rank_, dst, bytes, /*write=*/true));
  st.done[static_cast<std::size_t>(i)] = 1;
  if (--st.remaining == 0) {
    c.counters_.msgs_recv += 1;
    c.counters_.bytes_recv += static_cast<std::int64_t>(st.bytes);
  }
  return arrival <= wait_start;
}

bool Partitioned::arrived(int i) {
  if (state_ == nullptr)
    throw PartitionedError("arrived on an uninitialized partitioned request");
  auto& st = *state_;
  if (st.is_send)
    throw PartitionedError("arrived on a send-side partitioned request");
  if (!st.active)
    throw PartitionedError("arrived before start on a partitioned request");
  if (i < 0 || i >= static_cast<int>(st.sizes.size()))
    throw PartitionedError("arrived partition index out of range");
  if (st.done[static_cast<std::size_t>(i)])
    throw PartitionedError("partition consumed twice in one round");
  obs::ObsSpan op_span(obs::Cat::Wait, "mpi_parrived");
  return consume(i);
}

void Partitioned::wait() {
  if (state_ == nullptr)
    throw PartitionedError("wait on an uninitialized partitioned request");
  auto& st = *state_;
  if (!st.active)
    throw PartitionedError(
        "wait on a partitioned request with no round started");
  Comm& c = *st.comm;
  obs::ObsSpan op_span(obs::Cat::Wait, "mpi_pwait");
  if (st.is_send) {
    if (st.remaining > 0)
      throw PartitionedError(
          "wait with " + std::to_string(st.remaining) +
          " unready partitions (every partition needs pready first)");
    if (!c.held_.empty()) c.flush_held();
    c.rt_->transport_commit(c.rank_);
    // Send completion = every partition readied. pready copied each
    // partition eagerly, so the user buffer is already reusable and the
    // sender does NOT drain the NIC here (unlike a bulk Request wait):
    // decoupling the CPU from injection is the point of the partitioned
    // protocol, and any NIC backlog is visible where it physically lands —
    // as later per-partition arrival times on the receiver.
  } else {
    // Consume whatever arrived(i) has not, in index order.
    for (int i = 0; i < static_cast<int>(st.sizes.size()); ++i)
      if (!st.done[static_cast<std::size_t>(i)]) (void)consume(i);
  }
  st.active = false;
  --c.inflight_;
}

void Partitioned::free() {
  if (state_ == nullptr) return;
  if (state_->active)
    throw PartitionedError(
        "free of a partitioned request while a round is in flight");
  state_.reset();
}

void Comm::wait(Request& req) {
  BX_CHECK(req.valid(), "wait on an empty Request");
  obs::ObsSpan op_span(obs::Cat::Wait, "mpi_wait");
  // Before this rank can block, everything it still holds back (reorder
  // faults) must reach the wire — the flush point that keeps fault
  // schedules deadlock-free. The same point advances this rank's
  // aggregation commit generation, so staged frames seal before anyone
  // can block on their sub-messages.
  if (!held_.empty()) flush_held();
  rt_->transport_commit(rank_);
  auto& st = *req.state_;
  BX_CHECK(!st.done, "Request already completed");
  st.done = true;
  --inflight_;
  if (st.kind == Request::State::Kind::Send) {
    clock_.advance_to(st.send_complete);
    req.state_.reset();
    return;
  }
  Envelope env = rt_->match(rank_, st.peer, st.tag);
  if (rt_->fault_ != nullptr) {
    verify_envelope(env, st.bytes, st.peer, st.tag,
                    recv_seq_[{st.peer, st.tag}]);
  } else {
    BX_CHECK(env.data.size() == st.bytes, "receive size mismatch");
  }

  const NetModel& m = rt_->model_;
  const MemSpace dspace = rt_->classify(st.buf);
  double arrival = env.arrival;
  if (dspace == MemSpace::Device) arrival += m.device_alpha_extra;
  if (dspace == MemSpace::Unified) arrival += m.um_alpha_extra;
  if (obs::RankLog* lg = obs::ambient_log()) {
    // Receiver-side causal record for the critical-path analyzer: the
    // sender timeline from the envelope plus this rank's wait/availability
    // times. Captured before advance_to so wait_start is the blocked-from
    // time.
    obs::RecvEvent re;
    re.src = st.peer;
    re.tag = st.tag;
    re.bytes = static_cast<std::uint64_t>(st.bytes);
    re.post = env.post;
    re.inject_start = env.inject_start;
    re.depart = env.inject_end;
    re.inject_nominal = env.inject_nominal;
    re.arrive = env.arrival;
    re.fault_delay = env.fault_delay;
    re.sharing = env.sharing;
    re.wait_start = clock_.now();
    re.avail = arrival;
    re.onnode = env.onnode;
    re.agg_unpack = env.agg_unpack;
    lg->recv(re);
  }
  clock_.advance_to(arrival);

  counters_.msgs_recv += 1;
  counters_.bytes_recv += static_cast<std::int64_t>(st.bytes);
  if (st.flat) {
    obs::ObsSpan dt_span(obs::Cat::DtPack, "dt_scatter");
    st.flat->scatter(env.data.data(), static_cast<std::byte*>(st.buf));
    clock_.advance(static_cast<double>(st.flat->blocks.size()) *
                       m.dt_block_overhead +
                   static_cast<double>(st.bytes) / m.dt_copy_bw);
    counters_.dt_blocks += static_cast<std::int64_t>(st.flat->blocks.size());
    counters_.dt_pack_bytes += static_cast<std::int64_t>(st.bytes);
    for (const auto& blk : st.flat->blocks)
      clock_.advance(rt_->touch(rank_,
                                static_cast<std::byte*>(st.buf) + blk.offset,
                                blk.length, /*write=*/true));
  } else if (st.bytes > 0) {
    std::memcpy(st.buf, env.data.data(), st.bytes);
    clock_.advance(rt_->touch(rank_, st.buf, st.bytes, /*write=*/true));
  }
  req.state_.reset();
}

void Comm::waitall(std::vector<Request>& reqs) {
  for (auto& r : reqs)
    if (r.valid()) wait(r);
  reqs.clear();
}

void Comm::send(const void* buf, std::size_t bytes, int dest, int tag) {
  Request r = isend(buf, bytes, dest, tag);
  wait(r);
}

void Comm::recv(void* buf, std::size_t bytes, int src, int tag) {
  Request r = irecv(buf, bytes, src, tag);
  wait(r);
}

// ---------------------------------------------------------------------------
// Collectives: a generation-counted rendezvous that snapshots all ranks'
// contributions. The last arriver copies the slots so late wakers are immune
// to the next collective overwriting them.
// ---------------------------------------------------------------------------

namespace {
struct CollResult {
  std::vector<double> snapshot;
};
}  // namespace

std::vector<double> Comm::allgather(double v) {
  obs::ObsSpan span(obs::Cat::Collective, "allgather");
  const double coll_entry = clock_.now();
  if (!held_.empty()) flush_held();  // collectives are a fault flush point
  // Collective entry is also an aggregation commit point: by the time the
  // last arriver reaches the rendezvous below, every frame staged before
  // the collective has sealed — so the fabric epoch() really closes over
  // all of the round's flows.
  rt_->transport_commit(rank_);
  // First round: gather values. Second round: synchronize clocks.
  auto gather = [this](double x) {
    std::unique_lock lk(rt_->coll_mu_);
    const std::int64_t gen = rt_->coll_generation_;
    rt_->coll_slots_[static_cast<std::size_t>(rank_)] = x;
    if (++rt_->coll_arrived_ == rt_->nranks_) {
      // Every other rank is parked in the wait below: a globally quiescent
      // point, so the fabric can close its contention round race-free.
      rt_->fabric_->epoch();
      rt_->coll_snapshot_ = rt_->coll_slots_;
      rt_->coll_arrived_ = 0;
      ++rt_->coll_generation_;
      rt_->coll_cv_.notify_all();
    } else {
      rt_->coll_cv_.wait(lk, [&] {
        return rt_->coll_generation_ != gen || g_abort.load();
      });
      if (g_abort.load() && rt_->coll_generation_ == gen)
        throw AbortedError("collective aborted: another rank failed");
    }
    return rt_->coll_snapshot_;
  };

  std::vector<double> values = gather(v);
  std::vector<double> times = gather(clock_.now());
  double tmax = 0.0;
  for (double t : times) tmax = std::max(tmax, t);
  const double stages =
      std::ceil(std::log2(static_cast<double>(std::max(2, size_))));
  clock_.advance_to(tmax + rt_->model_.barrier_alpha * stages);
  // Barrier edge for the critical-path analyzer: every rank records the
  // same collective ordinal (collectives are global), so the n-th entries
  // align across ranks and the exit is the synchronized clock.
  if (obs::RankLog* lg = obs::ambient_log())
    lg->collective(obs::CollEvent{coll_entry, clock_.now()});
  return values;
}

void Comm::barrier() { (void)allgather(0.0); }

double Comm::allreduce_max(double v) {
  auto vs = allgather(v);
  double r = vs[0];
  for (double x : vs) r = std::max(r, x);
  return r;
}

double Comm::allreduce_sum(double v) {
  auto vs = allgather(v);
  double r = 0.0;
  for (double x : vs) r += x;
  return r;
}

std::int64_t Comm::allreduce_sum(std::int64_t v) {
  // Exact for |v| < 2^53, far beyond any counter in this codebase.
  return static_cast<std::int64_t>(allreduce_sum(static_cast<double>(v)));
}

// ---------------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------------

Runtime::Runtime(int nranks, NetModel model)
    : nranks_(nranks), model_(model) {
  BX_CHECK(nranks >= 1, "Runtime needs at least one rank");
  fabric_ = netsim::make_flat_fabric(nranks, model_.ranks_per_node);
  mailboxes_.reserve(static_cast<std::size_t>(nranks));
  for (int i = 0; i < nranks; ++i)
    mailboxes_.push_back(std::make_unique<Mailbox>());
  coll_slots_.resize(static_cast<std::size_t>(nranks));
  final_vtimes_.resize(static_cast<std::size_t>(nranks), 0.0);
  final_counters_.resize(static_cast<std::size_t>(nranks));
}

Runtime::~Runtime() = default;

void Runtime::set_fabric(std::unique_ptr<netsim::Fabric> fabric) {
  BX_CHECK(fabric != nullptr, "set_fabric: null fabric");
  fabric_ = std::move(fabric);
}

// ---------------------------------------------------------------------------
// Transport tier (DESIGN.md §13). The on-node short circuit lives inline in
// isend_impl; what follows is the node-leader aggregation machinery: staged
// sub-messages, the deterministic generation/commit protocol (delegated to
// transport::Aggregator) and frame sealing, which is where aggregated
// inter-node traffic finally meets the fabric.
// ---------------------------------------------------------------------------

struct Runtime::AggSub {
  int dest = 0;
  Envelope env;
};

struct Runtime::AggState {
  std::vector<int> node_leader;  ///< min member rank per node
  transport::Aggregator<AggSub> agg;

  AggState(Runtime* rt, const std::vector<int>& node_of)
      : agg(node_of, [rt](transport::Aggregator<AggSub>::Frame&& f) {
          rt->seal_frame(f.src_node, f.dst_node, std::move(f.subs));
        }) {
    int nodes = 0;
    for (int n : node_of) nodes = std::max(nodes, n + 1);
    node_leader.assign(static_cast<std::size_t>(nodes), -1);
    for (std::size_t r = 0; r < node_of.size(); ++r) {
      int& lead = node_leader[static_cast<std::size_t>(node_of[r])];
      if (lead < 0) lead = static_cast<int>(r);
    }
  }
};

void Runtime::transport_run_begin() {
  agg_.reset();
  {
    std::lock_guard lk(tstats_mu_);
    tstats_ = transport::Stats{};
  }
  {
    std::lock_guard lk(pf_mu_);
    pending_flows_.assign(static_cast<std::size_t>(nranks_), {});
  }
  if (transport_ != transport::Kind::ShmAgg) return;
  std::vector<int> node_of(static_cast<std::size_t>(nranks_));
  for (int r = 0; r < nranks_; ++r)
    node_of[static_cast<std::size_t>(r)] = fabric_->node_of(r);
  agg_ = std::make_unique<AggState>(this, node_of);
}

void Runtime::stage_agg(int src_rank, int dest, Envelope env, bool defer) {
  agg_->agg.stage(src_rank, fabric_->node_of(dest),
                  AggSub{dest, std::move(env)}, defer);
}

void Runtime::transport_commit(int rank) {
  if (agg_ == nullptr) return;
  agg_->agg.commit(rank);
  drain_pending_flows(rank);
}

void Runtime::transport_finalize(int rank) {
  if (agg_ == nullptr) return;
  agg_->agg.finalize(rank);
  drain_pending_flows(rank);
}

void Runtime::seal_frame(int src_node, int dst_node,
                         std::vector<AggSub>&& subs) {
  // Runs under the aggregator lock, on whichever member thread raised the
  // node minimum — every value computed here is a pure function of staged
  // state, and all ShmAgg fabric sends are serialized through this path,
  // so the timing is bit-deterministic.
  const NetModel& m = model_;
  std::int64_t payload = 0;
  double ready = 0.0;
  for (const AggSub& s : subs) {
    payload += static_cast<std::int64_t>(s.env.data.size());
    ready = std::max(ready, s.env.post);
  }
  const auto nsubs = static_cast<std::int64_t>(subs.size());
  const std::int64_t fbytes =
      m.agg_header_bytes + nsubs * m.agg_sub_header_bytes + payload;
  // Leader-side frame build: one table entry per sub-message after the
  // last staging copy has landed.
  ready += static_cast<double>(nsubs) * m.agg_sub_overhead;
  const int leader = agg_->node_leader[static_cast<std::size_t>(src_node)];
  const int dst_leader = agg_->node_leader[static_cast<std::size_t>(dst_node)];
  // Frames travel host staging buffer to host staging buffer, so the raw
  // inter-node link applies (memory-space surcharges were paid by the
  // staging copies on each sub's own clock).
  const netsim::SendTiming tm =
      fabric_->send(leader, dst_leader, static_cast<std::size_t>(fbytes),
                    m.inter_node.alpha, m.inter_node.bw, ready);
  const double nominal = static_cast<double>(fbytes) / m.inter_node.bw;
  double cursor = tm.arrival;
  for (AggSub& s : subs) {
    Envelope env = std::move(s.env);
    const std::size_t sub_bytes = env.data.size();
    // Receiver-node unpack walks the sub table in frame order; each sub
    // becomes visible after its table entry and view copy.
    cursor +=
        m.agg_sub_overhead + static_cast<double>(sub_bytes) / m.shm_view_bw;
    env.inject_start = tm.inject_start;
    env.inject_end = tm.inject_end;
    env.inject_nominal = nominal;
    env.sharing = tm.sharing;
    env.agg_unpack = cursor - tm.arrival;
    env.arrival = cursor + env.fault_delay;
    if (collector_ != nullptr) {
      obs::FlowEvent fe;
      fe.src = env.src;
      fe.dst = s.dest;
      fe.tag = env.tag;
      fe.bytes = static_cast<std::uint64_t>(sub_bytes);
      fe.depart = tm.inject_end;
      fe.arrive = env.arrival;
      fe.post = env.post;
      fe.inject_start = tm.inject_start;
      fe.inject_nominal = nominal;
      fe.sharing = tm.sharing;
      fe.agg_subs = static_cast<int>(subs.size());
      std::lock_guard lk(pf_mu_);
      pending_flows_[static_cast<std::size_t>(env.src)].push_back(fe);
    }
    deliver(s.dest, std::move(env));
  }
  std::lock_guard lk(tstats_mu_);
  tstats_.agg_frames += 1;
  tstats_.agg_submsgs += nsubs;
  tstats_.agg_frame_bytes += fbytes;
}

void Runtime::note_onnode(std::size_t bytes, bool view_copy) {
  std::lock_guard lk(tstats_mu_);
  tstats_.onnode_msgs += 1;
  tstats_.onnode_bytes += static_cast<std::int64_t>(bytes);
  if (view_copy) tstats_.onnode_copies += 1;
}

transport::Stats Runtime::transport_stats() const {
  std::lock_guard lk(tstats_mu_);
  return tstats_;
}

void Runtime::drain_pending_flows(int rank) {
  if (collector_ == nullptr) return;
  std::vector<obs::FlowEvent> fes;
  {
    std::lock_guard lk(pf_mu_);
    auto& q = pending_flows_[static_cast<std::size_t>(rank)];
    if (q.empty()) return;
    fes.swap(q);
  }
  // Appending to the rank's own single-writer log: called either from that
  // rank's thread or from the post-join sweep in run().
  obs::RankLog& lg = collector_->log(rank);
  for (const obs::FlowEvent& fe : fes) lg.flow(fe);
}

void Runtime::run(const std::function<void(Comm&)>& body) {
  g_abort.store(false);
  fabric_->reset();
  transport_run_begin();
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks_));
  threads.reserve(static_cast<std::size_t>(nranks_));
  for (int r = 0; r < nranks_; ++r) {
    threads.emplace_back([this, r, &body, &errors] {
      Comm comm(this, r, nranks_);
      // Bind this rank thread to its RankLog so comm/datatype/gpusim code
      // below can emit spans and metrics ambiently.
      std::optional<obs::BindGuard> obs_guard;
      if (collector_ != nullptr)
        obs_guard.emplace(&collector_->log(r), comm.clock().time_ptr());
      try {
        body(comm);
        // Reordered envelopes still held after the body ends would strand
        // their receivers (other ranks may still be draining); release
        // them before this thread parks. Likewise, finalizing the
        // aggregation generation lets the last member of each node seal
        // whatever frames the body left staged.
        comm.flush_held();
        transport_finalize(r);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        g_abort.store(true);
        for (auto& mb : mailboxes_) {
          std::lock_guard lk(mb->mu);
          mb->cv.notify_all();
        }
        {
          std::lock_guard lk(coll_mu_);
          coll_cv_.notify_all();
        }
      }
      final_vtimes_[static_cast<std::size_t>(r)] = comm.clock().now();
      final_counters_[static_cast<std::size_t>(r)] = comm.counters();
    });
  }
  for (auto& t : threads) t.join();
  // Sub-flow records sealed after their sender's last commit point are
  // still parked; append them now that the logs have no writers.
  if (agg_ != nullptr && !g_abort.load())
    for (int r = 0; r < nranks_; ++r) drain_pending_flows(r);
  // Leftover state from an aborted job must not leak into the next run().
  if (g_abort.load()) {
    for (auto& mb : mailboxes_) {
      std::lock_guard lk(mb->mu);
      mb->queue.clear();
    }
    std::lock_guard lk(coll_mu_);
    coll_arrived_ = 0;
  } else if (fault_ != nullptr) {
    // Sweep undelivered envelopes (e.g. a Duplicate's replay no receive
    // ever matched) so the next run starts clean, and account for them:
    // an unconsumed fault is quarantined, never silently absorbed.
    std::int64_t left = 0;
    for (auto& mb : mailboxes_) {
      std::lock_guard lk(mb->mu);
      left += static_cast<std::int64_t>(mb->queue.size());
      mb->queue.clear();
    }
    if (left > 0) fault_->note_leftover(left);
  }
  // Prefer a primary error: ranks torn down *because* another rank threw
  // report AbortedError, which must not mask the original diagnosis.
  std::exception_ptr primary, secondary;
  for (auto& e : errors) {
    if (!e) continue;
    try {
      std::rethrow_exception(e);
    } catch (const AbortedError&) {
      if (!secondary) secondary = e;
    } catch (...) {
      if (!primary) primary = e;
    }
  }
  if (primary) std::rethrow_exception(primary);
  if (secondary) std::rethrow_exception(secondary);
}

void Runtime::deliver(int dest, Envelope env) {
  Mailbox& mb = *mailboxes_[static_cast<std::size_t>(dest)];
  std::lock_guard lk(mb.mu);
  mb.queue.push_back(std::move(env));
  mb.cv.notify_all();
}

Envelope Runtime::match(int self, int src, int tag, int part) {
  Mailbox& mb = *mailboxes_[static_cast<std::size_t>(self)];
  std::unique_lock lk(mb.mu);
  while (true) {
    for (auto it = mb.queue.begin(); it != mb.queue.end(); ++it) {
      if (it->src == src && it->tag == tag && it->part == part) {
        Envelope env = std::move(*it);
        mb.queue.erase(it);
        return env;
      }
    }
    if (g_abort.load())
      throw AbortedError("receive aborted: another rank failed");
    mb.cv.wait(lk);
  }
}

void Runtime::enable_trace(bool on) {
  if (on) {
    if (!owned_trace_)
      owned_trace_ = std::make_unique<obs::Collector>(nranks_);
    collector_ = owned_trace_.get();
  } else if (collector_ == owned_trace_.get()) {
    collector_ = nullptr;
  }
}

std::vector<MsgEvent> Runtime::trace() const {
  std::vector<MsgEvent> t;
  if (collector_ != nullptr) {
    for (int r = 0; r < nranks_; ++r)
      for (const obs::FlowEvent& f : collector_->log(r).flows())
        t.push_back(MsgEvent{f.src, f.dst, f.tag,
                             static_cast<std::size_t>(f.bytes), f.depart,
                             f.arrive});
  }
  std::sort(t.begin(), t.end(), [](const MsgEvent& a, const MsgEvent& b) {
    if (a.departure != b.departure) return a.departure < b.departure;
    if (a.src != b.src) return a.src < b.src;
    if (a.dst != b.dst) return a.dst < b.dst;
    return a.tag < b.tag;
  });
  return t;
}

void Runtime::clear_trace() {
  if (collector_ == nullptr) return;
  for (int r = 0; r < nranks_; ++r) collector_->log(r).clear_flows();
}

double Runtime::final_vtime(int rank) const {
  return final_vtimes_[static_cast<std::size_t>(rank)];
}

const CommCounters& Runtime::final_counters(int rank) const {
  return final_counters_[static_cast<std::size_t>(rank)];
}

}  // namespace brickx::mpi
